package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkPlanner/plan-8 \t     100\t  12345 ns/op", "BenchmarkPlanner/plan", 12345, true},
		{"BenchmarkTriangle/agm/n=1000/generic-16    3  1234.5 ns/op  7 B/op", "BenchmarkTriangle/agm/n=1000/generic", 1234.5, true},
		{"BenchmarkCountPushdown/star/countfast/generic-join-4   1   99 ns/op", "BenchmarkCountPushdown/star/countfast/generic-join", 99, true},
		{"BenchmarkBare 10 500 ns/op", "BenchmarkBare", 500, true},
		{"PASS", "", 0, false},
		{"ok  \twcoj\t1.2s", "", 0, false},
		{"--- BENCH: BenchmarkFoo", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// jsonBenchOutput renders bench rows as a `go test -json` stream,
// splitting each row across two output events the way the real stream
// flushes a benchmark's name before its timing.
func jsonBenchOutput(t *testing.T, rows ...string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"wcoj"}` + "\n")
	emit := func(s string) {
		enc, err := json.Marshal(map[string]string{"Action": "output", "Output": s})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(enc)
		b.WriteByte('\n')
	}
	for _, r := range rows {
		name, rest, _ := strings.Cut(r, " ")
		emit(name + " ")
		emit(rest + "\n")
	}
	return b.String()
}

func TestGateUpdateAndPass(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	runFile := writeFile(t, dir, "run.json", jsonBenchOutput(t,
		"BenchmarkIntersect/merge-balanced-8  10  1000000 ns/op",
		"BenchmarkPlanner/plan-8  10  5000000 ns/op",
		"BenchmarkCountPushdown/triangle/countfast/generic-join-8  3  9000000 ns/op",
	))
	var out bytes.Buffer
	if err := run(baseline, 1.30, 200000, "", true, "test baseline", []string{runFile}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	// Same numbers gate clean.
	out.Reset()
	if err := run(baseline, 1.30, 200000, filepath.Join(dir, "cur.json"), false, "", []string{runFile}, &out); err != nil {
		t.Fatalf("gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("missing verdict: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "cur.json")); err != nil {
		t.Fatalf("-out not written: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	baseRun := writeFile(t, dir, "base_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-8  10  1000000 ns/op",
		"BenchmarkPlanner/plan-8  10  5000000 ns/op",
	}, "\n"))
	var out bytes.Buffer
	if err := run(baseline, 1.30, 200000, "", true, "", []string{baseRun}, &out); err != nil {
		t.Fatal(err)
	}
	// 2x slower on the gated row, calibration unchanged: must fail.
	badRun := writeFile(t, dir, "bad_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-8  10  1000000 ns/op",
		"BenchmarkPlanner/plan-8  10  10000000 ns/op",
	}, "\n"))
	out.Reset()
	err := run(baseline, 1.30, 200000, "", false, "", []string{badRun}, &out)
	if err == nil {
		t.Fatalf("2x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION verdict: %s", out.String())
	}
}

func TestGateCalibrationCancelsMachineSpeed(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	baseRun := writeFile(t, dir, "base_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-8  10  1000000 ns/op",
		"BenchmarkPlanner/plan-8  10  5000000 ns/op",
	}, "\n"))
	var out bytes.Buffer
	if err := run(baseline, 1.30, 200000, "", true, "", []string{baseRun}, &out); err != nil {
		t.Fatal(err)
	}
	// A uniformly 2x slower machine: calibration moves too, gate passes.
	slowRun := writeFile(t, dir, "slow_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-4  10  2000000 ns/op",
		"BenchmarkPlanner/plan-4  10  10000000 ns/op",
	}, "\n"))
	out.Reset()
	if err := run(baseline, 1.30, 200000, "", false, "", []string{slowRun}, &out); err != nil {
		t.Fatalf("uniformly slow machine failed the gate: %v\n%s", err, out.String())
	}
}

func TestGateIgnoresMissingAndTiny(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	baseRun := writeFile(t, dir, "base_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-8  10  1000000 ns/op",
		"BenchmarkParallelEngine/triangle/p=16-16  3  5000000 ns/op", // machine-specific row
		"BenchmarkTiny-8  100000  50 ns/op",                          // below -min-ns
		"BenchmarkPlanner/plan-8  10  5000000 ns/op",
	}, "\n"))
	var out bytes.Buffer
	if err := run(baseline, 1.30, 200000, "", true, "", []string{baseRun}, &out); err != nil {
		t.Fatal(err)
	}
	// The CI machine lacks p=16, and the tiny row got 100x slower —
	// neither may fail the gate.
	ciRun := writeFile(t, dir, "ci_run.txt", strings.Join([]string{
		"BenchmarkIntersect/merge-balanced-4  10  1000000 ns/op",
		"BenchmarkTiny-4  100  5000 ns/op",
		"BenchmarkPlanner/plan-4  10  5000000 ns/op",
	}, "\n"))
	out.Reset()
	if err := run(baseline, 1.30, 200000, "", false, "", []string{ciRun}, &out); err != nil {
		t.Fatalf("missing/tiny rows failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "missing (not gated)") || !strings.Contains(out.String(), "below -min-ns") {
		t.Fatalf("expected missing/tiny annotations:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("nope.json", 1.3, 0, "", false, "", nil, &out); err == nil {
		t.Fatal("no input files must fail")
	}
	dir := t.TempDir()
	empty := writeFile(t, dir, "empty.txt", "PASS\n")
	if err := run("nope.json", 1.3, 0, "", false, "", []string{empty}, &out); err == nil {
		t.Fatal("input without benchmarks must fail")
	}
	some := writeFile(t, dir, "some.txt", "BenchmarkX 1 1000000 ns/op\n")
	if err := run(filepath.Join(dir, "missing-baseline.json"), 1.3, 0, "", false, "", []string{some}, &out); err == nil {
		t.Fatal("missing baseline must fail")
	}
}

// TestGateMedianOfRepeatedRows: -count N rows collapse to their
// median, so one outlier sample — above or below — cannot move a
// gated ratio (or, worse, the calibration factor every other ratio is
// divided by).
func TestGateMedianOfRepeatedRows(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	baseRun := writeFile(t, dir, "base_run.json", jsonBenchOutput(t,
		"BenchmarkPlanner/plan-8  10  5000000 ns/op",
	))
	var out bytes.Buffer
	if err := run(baseline, 1.30, 200000, "", true, "", []string{baseRun}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	// Three samples: median 5.1ms (2% over baseline) — the 60ms
	// outlier must not fail the gate, which a mean (23ms, 4.7x) would.
	cur := writeFile(t, dir, "cur_run.json", jsonBenchOutput(t,
		"BenchmarkPlanner/plan-8  10  5100000 ns/op",
		"BenchmarkPlanner/plan-8  10  60000000 ns/op",
		"BenchmarkPlanner/plan-8  10  4900000 ns/op",
	))
	out.Reset()
	if err := run(baseline, 1.30, 200000, "", false, "", []string{cur}, &out); err != nil {
		t.Fatalf("median gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("missing verdict: %s", out.String())
	}
	// An even sample count takes the middle pair's mean.
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median of 1..4 = %v, want 2.5", got)
	}
}
