package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{
		"triangle-agm", "triangle-skew", "graph", "powerlaw", "lw", "chain63", "example1",
	} {
		out := filepath.Join(dir, kind)
		if err := run(kind, 400, 3, 1, out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		entries, err := os.ReadDir(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s produced no files", kind)
		}
	}
	if err := run("nope", 10, 3, 1, dir); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
