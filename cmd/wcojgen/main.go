// Command wcojgen generates benchmark workloads as TSV files.
//
// Usage:
//
//	wcojgen -kind triangle-agm|triangle-skew|star|graph|powerlaw|lw|chain63|example1 \
//	        -n 10000 [-k 3] [-seed 1] -out DIR
//
// The star kind writes the planner-sensitivity fixture: R(A,B) is a
// hub-centered star with n spokes and S(B,C) fans the hub out plus
// n/20 distractor edges (see the "Choosing a variable order"
// walkthrough in README.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wcoj/internal/dataset"
	"wcoj/internal/relation"
)

func main() {
	var (
		kind = flag.String("kind", "triangle-agm", "workload kind")
		n    = flag.Int("n", 10000, "scale (tuples per relation, approximately)")
		k    = flag.Int("k", 3, "query width (Loomis-Whitney only)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*kind, *n, *k, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "wcojgen:", err)
		os.Exit(1)
	}
}

func run(kind string, n, k int, seed int64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	save := func(r *relation.Relation, file string) error {
		f, err := os.Create(filepath.Join(out, file))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteTSV(f, r); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d tuples\n", file, r.Len())
		return nil
	}
	switch kind {
	case "triangle-agm":
		tri := dataset.TriangleAGMTight(n)
		for _, p := range []struct {
			r *relation.Relation
			f string
		}{{tri.R, "R.tsv"}, {tri.S, "S.tsv"}, {tri.T, "T.tsv"}} {
			if err := save(p.r, p.f); err != nil {
				return err
			}
		}
	case "triangle-skew":
		tri := dataset.TriangleSkew(n)
		for _, p := range []struct {
			r *relation.Relation
			f string
		}{{tri.R, "R.tsv"}, {tri.S, "S.tsv"}, {tri.T, "T.tsv"}} {
			if err := save(p.r, p.f); err != nil {
				return err
			}
		}
	case "star":
		star := dataset.SkewedStar(n, 10, n/20)
		if err := save(star.R, "R.tsv"); err != nil {
			return err
		}
		return save(star.S, "S.tsv")
	case "graph":
		return save(dataset.RandomGraph(n/4+2, n, seed), "E.tsv")
	case "powerlaw":
		return save(dataset.PowerLawGraph(n/4+2, n, 1.5, seed), "E.tsv")
	case "lw":
		rels := dataset.LoomisWhitney(k, n)
		for i, r := range rels {
			if err := save(r, fmt.Sprintf("R%d.tsv", i)); err != nil {
				return err
			}
		}
	case "chain63":
		c := dataset.NewChain63(n, 4, 4, 4, seed)
		for _, p := range []struct {
			r *relation.Relation
			f string
		}{{c.R, "R.tsv"}, {c.S, "S.tsv"}, {c.T, "T.tsv"}, {c.W, "W.tsv"}} {
			if err := save(p.r, p.f); err != nil {
				return err
			}
		}
	case "example1":
		d := dataset.NewExample1(n, 4, 4, 0.3, seed)
		for _, p := range []struct {
			r *relation.Relation
			f string
		}{{d.R, "R.tsv"}, {d.S, "S.tsv"}, {d.T, "T.tsv"}, {d.W, "W.tsv"}, {d.V, "V.tsv"}} {
			if err := save(p.r, p.f); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return nil
}
