// Command wcojlint runs the project's static analysis suite (see
// internal/lint) over the given packages, in the style of a
// go/analysis multichecker:
//
//	go run ./cmd/wcojlint ./...
//	go run ./cmd/wcojlint -only snapshotonce,ctxpoll ./internal/core
//
// Exit status: 0 clean, 1 findings reported, 2 analysis failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wcoj/internal/lint"
	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wcojlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wcojlint [-only a,b] [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "wcojlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	units, err := loader.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "wcojlint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(analyzers, units)
	if err != nil {
		fmt.Fprintf(stderr, "wcojlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
