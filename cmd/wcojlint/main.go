// Command wcojlint runs the project's static analysis suite (see
// internal/lint) over the given packages, in the style of a
// go/analysis multichecker:
//
//	go run ./cmd/wcojlint ./...
//	go run ./cmd/wcojlint -only snapshotonce,ctxpoll ./internal/core
//	go run ./cmd/wcojlint -disable nilness ./...
//	go run ./cmd/wcojlint -enable arenaescape,fsyncorder ./...
//	go run ./cmd/wcojlint -deprecated ./...
//
// -enable restricts the run to the named analyzers (a synonym for
// -only); -disable subtracts names from whatever -enable/-only left.
// -deprecated runs no analysis at all: it prints the bare names of the
// symbols the deprecated analyzer would flag, one per line — the input
// of CI's docs-freshness grep (prose teaching a symbol the linter bans
// internally is stale).
//
// Exit status: 0 clean, 1 findings reported, 2 analysis failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wcoj/internal/lint"
	"wcoj/internal/lint/analysis"
	"wcoj/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wcojlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	enable := fs.String("enable", "", "comma-separated analyzer names to run (synonym for -only)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	list := fs.Bool("list", false, "list available analyzers and exit")
	deprecated := fs.Bool("deprecated", false, "list deprecated symbol names in the given packages and exit")
	dir := fs.String("C", "", "change to this directory before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wcojlint [-only a,b] [-enable a,b] [-disable a,b] [-C dir] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	parseNames := func(csv string) ([]string, bool) {
		var names []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				fmt.Fprintf(stderr, "wcojlint: unknown analyzer %q\n", name)
				return nil, false
			}
			names = append(names, name)
		}
		return names, true
	}
	for _, restrict := range []string{*only, *enable} {
		if restrict == "" {
			continue
		}
		names, ok := parseNames(restrict)
		if !ok {
			return 2
		}
		keep := make(map[string]bool, len(names))
		for _, n := range names {
			keep[n] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *disable != "" {
		names, ok := parseNames(*disable)
		if !ok {
			return 2
		}
		drop := make(map[string]bool, len(names))
		for _, n := range names {
			drop[n] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	units, err := loader.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "wcojlint: %v\n", err)
		return 2
	}
	if *deprecated {
		names, err := lint.DeprecatedSymbols(units)
		if err != nil {
			fmt.Fprintf(stderr, "wcojlint: %v\n", err)
			return 2
		}
		for _, name := range names {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	diags, err := analysis.Run(analyzers, units)
	if err != nil {
		fmt.Fprintf(stderr, "wcojlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
