package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanTree is the self-hosting check: the suite must exit 0 over
// the whole repository. A regression that introduces a violation (or
// an analyzer change that starts flagging sanctioned code) fails here
// before it fails in CI.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("wcojlint ./... = exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no diagnostics, got:\n%s", stdout.String())
	}
}

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("wcojlint -list = exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{
		"snapshotonce", "ctxpoll", "statsmerge", "valueident",
		"arenaescape", "fsyncorder", "publishimmutable", "deprecated",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

func TestOnlyUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuchanalyzer", "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestOnlySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-only", "statsmerge", "./internal/core"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-only statsmerge ./internal/core = exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestEnableUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-enable", "nosuchanalyzer", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown -enable analyzer: exit %d, want 2", code)
	}
}

func TestDisableUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-disable", "nosuchanalyzer", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown -disable analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

func TestEnableDisableSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks packages")
	}
	var stdout, stderr bytes.Buffer
	// -enable restricts to two analyzers, -disable subtracts one: the
	// run is statsmerge alone and must stay clean on internal/core.
	code := run([]string{"-C", "../..", "-enable", "statsmerge,nilness", "-disable", "nilness", "./internal/core"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-enable/-disable subset = exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
