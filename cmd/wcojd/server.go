package main

// Serving infrastructure: the long-lived HTTP server around a wcoj.DB,
// hardened for shared deployments.
//
// Lifecycle. The listener binds and serves immediately; the DB loads
// (and, with -dir, replays its write-ahead log) in the background.
// Until the load finishes, /healthz answers 200 (the process is alive)
// while /readyz answers 503 (do not route traffic here yet) and the
// data endpoints reject with 503. A SIGTERM/SIGINT flips /readyz to
// 503 again ("draining"), lets in-flight requests finish up to
// -drain-timeout, then closes the WAL — so a rolling restart loses
// neither requests nor acknowledged updates.
//
// Admission. Every data request passes three gates before it touches
// the engine: a concurrency semaphore (-max-inflight, excess answered
// 429 immediately — a loaded server sheds rather than queues), a body
// cap (-max-body, oversized bodies answered 413 before they are read),
// and a per-request deadline (-query-timeout, expiry answered 504).
// Queries additionally carry a search-node budget (-node-budget,
// exhaustion answered 422) so one pathological join cannot monopolize
// the process for its full deadline.
//
// Observability. /metrics exposes Prometheus text: request and
// rejection counters, in-flight and latency aggregates, and the
// engine's own DBStats (epoch, tuples, plan cache, trie store).

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"wcoj"
)

// server is the HTTP serving state around one DB.
type server struct {
	// db is nil until the background load/replay finishes; handlers
	// treat a nil DB as "not ready". The atomic publish is the
	// happens-before edge for everything the loader wrote (including
	// dictRels).
	db atomic.Pointer[wcoj.DB]
	// dictRels is written by the loader before db is published and
	// read-only afterwards: it records which relations intern strings.
	dictRels map[string]bool
	// draining is set on SIGTERM: /readyz goes 503 and new data
	// requests are refused while in-flight ones finish.
	draining atomic.Bool

	queryTimeout time.Duration
	nodeBudget   int64
	maxBody      int64
	// sem is the admission semaphore: a data request must acquire a
	// slot without blocking or it is answered 429.
	sem chan struct{}

	m serverMetrics
}

// serverMetrics aggregates the counters /metrics exposes. The maps are
// keyed by small fixed label sets (handler names, status codes,
// rejection reasons), so cardinality stays bounded.
type serverMetrics struct {
	mu       sync.Mutex
	requests map[string]uint64 //wcojlint:guardedby mu
	rejected map[string]uint64 //wcojlint:guardedby mu

	inflight    atomic.Int64
	queryNanos  atomic.Int64
	queries     atomic.Uint64
	updateNanos atomic.Int64
	updates     atomic.Uint64
}

func newServer(c config) *server {
	maxInflight := c.maxInflight
	if maxInflight < 1 {
		maxInflight = 1
	}
	return &server{
		queryTimeout: c.queryTimeout,
		nodeBudget:   c.nodeBudget,
		maxBody:      c.maxBody,
		sem:          make(chan struct{}, maxInflight),
		m: serverMetrics{
			requests: make(map[string]uint64),
			rejected: make(map[string]uint64),
		},
	}
}

func (m *serverMetrics) countRequest(handler string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf(`handler=%q,code="%d"`, handler, code)]++
	m.mu.Unlock()
}

func (m *serverMetrics) countReject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// reject refuses a request before it reaches the engine, counting it
// under both the rejection reason and the handler/status pair.
func (s *server) reject(w http.ResponseWriter, handler, reason string, code int, msg string) {
	s.m.countReject(reason)
	s.m.countRequest(handler, code)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, code)
}

// admit runs the admission gates for a data request: readiness, then
// the concurrency semaphore. On success the caller owns a slot and
// must call the returned release.
func (s *server) admit(w http.ResponseWriter, handler string) (release func(), ok bool) {
	if s.db.Load() == nil {
		s.reject(w, handler, "not_ready", http.StatusServiceUnavailable, "loading")
		return nil, false
	}
	if s.draining.Load() {
		s.reject(w, handler, "draining", http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
		s.m.inflight.Add(1)
		return func() {
			<-s.sem
			s.m.inflight.Add(-1)
		}, true
	default:
		s.reject(w, handler, "overload", http.StatusTooManyRequests, "too many in-flight requests")
		return nil, false
	}
}

// statusOf refines an engine error into the admission-control status
// codes: deadline expiry is the gateway-timeout family, budget
// exhaustion is the request's own fault, an over-large body was cut
// off by MaxBytesReader.
func statusOf(err error, fallback int) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, wcoj.ErrNodeBudget):
		return http.StatusUnprocessableEntity
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

// queryCtx bounds one query: the request context (client gone =
// cancelled), the server deadline, and the node budget.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
	if s.nodeBudget > 0 {
		ctx = wcoj.WithNodeBudget(ctx, s.nodeBudget)
	}
	return ctx, cancel
}

func (s *server) handleQueryHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.m.countRequest("query", http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w, "query")
	if !ok {
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req queryRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		code := statusOf(err, http.StatusBadRequest)
		s.m.countRequest("query", code)
		http.Error(w, err.Error(), code)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	start := time.Now()
	resp, status, err := handleQuery(ctx, s.db.Load(), req)
	s.m.queryNanos.Add(int64(time.Since(start)))
	s.m.queries.Add(1)
	if err != nil {
		code := statusOf(err, status)
		s.m.countRequest("query", code)
		http.Error(w, err.Error(), code)
		return
	}
	s.m.countRequest("query", http.StatusOK)
	writeJSON(w, resp)
}

func (s *server) handleUpdateHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.m.countRequest("update", http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w, "update")
	if !ok {
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req updateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		code := statusOf(err, http.StatusBadRequest)
		s.m.countRequest("update", code)
		http.Error(w, err.Error(), code)
		return
	}
	start := time.Now()
	resp, status, err := handleUpdate(s.db.Load(), s.dictRels, req)
	s.m.updateNanos.Add(int64(time.Since(start)))
	s.m.updates.Add(1)
	if err != nil {
		code := statusOf(err, status)
		s.m.countRequest("update", code)
		http.Error(w, err.Error(), code)
		return
	}
	s.m.countRequest("update", http.StatusOK)
	writeJSON(w, resp)
}

// serveMetrics writes the Prometheus text exposition. It needs no
// admission slot and works during replay (engine gauges appear once
// the DB is up), so scrapes always succeed.
func (s *server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b []byte
	f := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	f("# HELP wcojd_requests_total HTTP requests by handler and status code.\n")
	f("# TYPE wcojd_requests_total counter\n")
	s.m.mu.Lock()
	reqKeys := make([]string, 0, len(s.m.requests))
	for k := range s.m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Strings(reqKeys)
	for _, k := range reqKeys {
		f("wcojd_requests_total{%s} %d\n", k, s.m.requests[k])
	}
	rejKeys := make([]string, 0, len(s.m.rejected))
	for k := range s.m.rejected {
		rejKeys = append(rejKeys, k)
	}
	sort.Strings(rejKeys)
	rej := make([]uint64, len(rejKeys))
	for i, k := range rejKeys {
		rej[i] = s.m.rejected[k]
	}
	s.m.mu.Unlock()
	f("# HELP wcojd_rejected_total Requests refused by admission control, by reason.\n")
	f("# TYPE wcojd_rejected_total counter\n")
	for i, k := range rejKeys {
		f("wcojd_rejected_total{reason=%q} %d\n", k, rej[i])
	}
	f("# HELP wcojd_inflight_requests Data requests currently holding an admission slot.\n")
	f("# TYPE wcojd_inflight_requests gauge\n")
	f("wcojd_inflight_requests %d\n", s.m.inflight.Load())
	f("# HELP wcojd_query_seconds_total Time spent executing queries.\n")
	f("# TYPE wcojd_query_seconds_total counter\n")
	f("wcojd_query_seconds_total %g\n", time.Duration(s.m.queryNanos.Load()).Seconds())
	f("# HELP wcojd_queries_total Query executions.\n")
	f("# TYPE wcojd_queries_total counter\n")
	f("wcojd_queries_total %d\n", s.m.queries.Load())
	f("# HELP wcojd_update_seconds_total Time spent applying updates.\n")
	f("# TYPE wcojd_update_seconds_total counter\n")
	f("wcojd_update_seconds_total %g\n", time.Duration(s.m.updateNanos.Load()).Seconds())
	f("# HELP wcojd_updates_total Update applications.\n")
	f("# TYPE wcojd_updates_total counter\n")
	f("wcojd_updates_total %d\n", s.m.updates.Load())

	db := s.db.Load()
	ready := 0
	if db != nil && !s.draining.Load() {
		ready = 1
	}
	f("# HELP wcojd_ready Whether the server is accepting data requests.\n")
	f("# TYPE wcojd_ready gauge\n")
	f("wcojd_ready %d\n", ready)

	if db != nil {
		st := db.Stats()
		f("# HELP wcojd_db_epoch Current update epoch.\n")
		f("# TYPE wcojd_db_epoch gauge\n")
		f("wcojd_db_epoch %d\n", st.Epoch)
		f("# TYPE wcojd_db_relations gauge\n")
		f("wcojd_db_relations %d\n", st.Relations)
		f("# TYPE wcojd_db_tuples gauge\n")
		f("wcojd_db_tuples %d\n", st.Tuples)
		f("# TYPE wcojd_db_delta_tuples gauge\n")
		f("wcojd_db_delta_tuples %d\n", st.DeltaTuples)
		f("# TYPE wcojd_db_batches_total counter\n")
		f("wcojd_db_batches_total %d\n", st.Batches)
		f("# TYPE wcojd_db_compactions_total counter\n")
		f("wcojd_db_compactions_total %d\n", st.Compactions)
		f("# TYPE wcojd_db_plans_cached gauge\n")
		f("wcojd_db_plans_cached %d\n", st.PlansCached)
		f("# TYPE wcojd_db_plan_hits_total counter\n")
		f("wcojd_db_plan_hits_total %d\n", st.PlanHits)
		f("# TYPE wcojd_db_plan_misses_total counter\n")
		f("wcojd_db_plan_misses_total %d\n", st.PlanMisses)
		f("# TYPE wcojd_db_trie_entries gauge\n")
		f("wcojd_db_trie_entries %d\n", st.TrieEntries)
		f("# TYPE wcojd_db_trie_bytes gauge\n")
		f("wcojd_db_trie_bytes %d\n", st.TrieBytes)
		materializedMetrics(db, f)
	}
	w.Write(b)
}

// serveReadyz is the readiness probe: route traffic here only when
// the DB is loaded and the server is not draining.
func (s *server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.db.Load() == nil:
		http.Error(w, "loading", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ok")
	}
}

func (s *server) serveStats(w http.ResponseWriter, r *http.Request) {
	db := s.db.Load()
	if db == nil {
		http.Error(w, "loading", http.StatusServiceUnavailable)
		return
	}
	// The engine counters plus one line per maintained view, so an
	// operator sees at a glance which views exist and whether each has
	// kept up with the epoch (a lagging or stale view is the first
	// thing to check after an incident).
	stats := struct {
		wcoj.DBStats
		Materialized []materializedView `json:"materialized,omitempty"`
	}{DBStats: db.Stats()}
	for _, mq := range db.MaterializedViews() {
		stats.Materialized = append(stats.Materialized, viewOf(mq, false))
	}
	writeJSON(w, stats)
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	// Liveness: the process is up, even while loading or draining —
	// restarting it would only lose progress.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.serveReadyz)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/stats", s.serveStats)
	mux.HandleFunc("/query", s.handleQueryHTTP)
	mux.HandleFunc("/update", s.handleUpdateHTTP)
	mux.HandleFunc("/materialize", s.handleMaterializeHTTP)
	mux.HandleFunc("/materialized", s.handleMaterializedHTTP)
	mux.HandleFunc("/materialized/", s.handleMaterializedHTTP)
	return mux
}

// serve binds the listener, starts serving immediately (liveness comes
// up before the data does), loads or recovers the DB in the
// background, and drains gracefully on SIGTERM/SIGINT.
func serve(c config) error {
	s := newServer(c)
	ln, err := net.Listen("tcp", c.serveAddr)
	if err != nil {
		return err
	}
	// The bound address line is load-bearing for orchestration (and the
	// soak harness): with ":0" it is the only way to learn the port.
	fmt.Printf("serving on %s (POST /query /update /materialize, GET /materialized /stats /metrics /healthz /readyz)\n", ln.Addr())
	srv := &http.Server{
		Handler: s.handler(),
		// A serving daemon must not let stalled clients pin goroutines
		// forever; joins themselves stay bounded by request contexts.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()

	loadErr := make(chan error, 1)
	go func() {
		db, dictRels, err := loadDB(c)
		if err != nil {
			loadErr <- err
			return
		}
		s.dictRels = dictRels
		s.db.Store(db) // publishes dictRels too; readyz flips here
		fmt.Printf("ready: %d relations at epoch %d\n", db.Stats().Relations, db.Stats().Epoch)
		loadErr <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)

	for {
		select {
		case err := <-srvErr:
			// Serve only returns on listener failure (or Shutdown, which
			// exits via the sig arm below).
			return err
		case err := <-loadErr:
			if err != nil {
				srv.Close()
				return err
			}
		case <-sig:
			// Drain: stop admitting (readyz goes 503), let in-flight
			// requests finish, then release the WAL so the next process
			// can recover the directory.
			fmt.Println("draining")
			s.draining.Store(true)
			ctx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if db := s.db.Load(); db != nil {
				if cerr := db.Close(); err == nil {
					err = cerr
				}
			}
			return err
		}
	}
}
