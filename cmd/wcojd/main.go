// Command wcojd runs many queries against one long-lived wcoj.DB —
// the serving shape: relations and indexes are loaded once, plans are
// prepared once, and traffic re-executes them concurrently.
//
// Batch mode reads one query per line and drives the shared DB with a
// configurable worker count:
//
//	wcojd -rel E=edges.tsv -queries queries.txt -repeat 100 -concurrency 8
//
// Serve mode exposes the DB over HTTP:
//
//	wcojd -rel E=edges.tsv -serve :8077
//
//	POST /query   {"query": "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)",
//	               "count": true | "exists": true | "limit": 50,
//	               "project": ["A","C"], "algo": "...", "planner": "..."}
//	POST /update  {"insert": {"E": [[1,2],[3,4]]}, "delete": {"E": [[5,6]]}}
//	POST /materialize      {"query": "...", "mode": "count"|"exists"|"rows",
//	                        "project": [...], "algo": "...", "parallel": N}
//	                       register a maintained view: the answer is kept
//	                       continuously correct across /update batches
//	GET  /materialized     list maintained views (id, epoch, count, stale)
//	GET  /materialized/{id}  one view; rows mode includes the tuples
//	DELETE /materialized/{id} retire a view
//	GET  /stats   engine counters (relations, deltas, trie store, plan cache)
//	              plus one entry per maintained view
//	GET  /metrics Prometheus text exposition
//	GET  /healthz liveness (always 200 while the process runs)
//	GET  /readyz  readiness (503 while loading/replaying or draining)
//
// With -dir the DB is durable: every applied batch is written (and
// fsynced) to a write-ahead log under the directory before it becomes
// visible, and a restart replays the newest snapshot plus the log tail
// back to the exact pre-crash epoch — including re-arming every
// registered maintained view at its pre-crash answer. -rel files then
// only seed relations the directory does not already hold.
//
// Serve mode is production-hardened: requests are bounded by a
// concurrency semaphore (-max-inflight, overflow answered 429), a body
// cap (-max-body, 413), a deadline (-query-timeout, 504) and a search
// node budget (-node-budget, 422); SIGTERM drains gracefully. See
// server.go for the full admission and lifecycle story.
//
// Every request round-trips through the DB's plan cache, so repeated
// query shapes never re-plan; request cancellation (a closed client
// connection) propagates into the join and unwinds its workers.
// Updates (POST /update, or startup -updates delta files: lines
// "+,1,2" insert, "-,3,4" delete) apply atomically and are absorbed
// incrementally — prepared plans survive, and only the touched
// relation's tries are re-versioned by merging the delta.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wcoj"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

type config struct {
	rels        relFlags
	updates     relFlags
	queriesPath string
	serveAddr   string
	dir         string
	algo        string
	planner     string
	parallel    int
	repeat      int
	concurrency int

	queryTimeout time.Duration
	drainTimeout time.Duration
	nodeBudget   int64
	maxInflight  int
	maxBody      int64
}

func main() {
	var c config
	flag.Var(&c.rels, "rel", "NAME=path.tsv|.csv (repeatable)")
	flag.Var(&c.updates, "updates", "NAME=delta.tsv|.csv batch update file applied after load: '+,v1,v2' inserts, '-,v1,v2' deletes (repeatable)")
	flag.StringVar(&c.queriesPath, "queries", "", "batch mode: file with one conjunctive query per line ('-' = stdin)")
	flag.StringVar(&c.serveAddr, "serve", "", "serve mode: HTTP listen address, e.g. :8077")
	flag.StringVar(&c.dir, "dir", "", "durable mode: directory for the write-ahead log and snapshots (recovered on start)")
	flag.StringVar(&c.algo, "algo", "generic-join", "join algorithm for batch queries")
	flag.StringVar(&c.planner, "planner", "auto", "variable-order planner for batch queries")
	flag.IntVar(&c.parallel, "parallel", 1, "per-query worker goroutines (batch mode defaults serial: concurrency supplies the parallelism)")
	flag.IntVar(&c.repeat, "repeat", 1, "batch mode: times each query is executed")
	flag.IntVar(&c.concurrency, "concurrency", 4, "batch mode: concurrent executor goroutines")
	flag.DurationVar(&c.queryTimeout, "query-timeout", 30*time.Second, "serve mode: per-request deadline (expiry answers 504)")
	flag.DurationVar(&c.drainTimeout, "drain-timeout", 10*time.Second, "serve mode: grace for in-flight requests on SIGTERM")
	flag.Int64Var(&c.nodeBudget, "node-budget", 0, "serve mode: per-query search-node budget, 0 = unlimited (exhaustion answers 422)")
	flag.IntVar(&c.maxInflight, "max-inflight", 64, "serve mode: concurrent data requests admitted (overflow answers 429)")
	flag.Int64Var(&c.maxBody, "max-body", 1<<20, "serve mode: request body byte cap (overflow answers 413)")
	flag.Parse()
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "wcojd:", err)
		os.Exit(1)
	}
}

func run(c config) error {
	if (c.queriesPath == "") == (c.serveAddr == "") {
		return fmt.Errorf("exactly one of -queries (batch) or -serve (HTTP) is required")
	}
	if c.serveAddr != "" {
		// Serve mode loads in the background so liveness comes up
		// immediately; see server.go.
		return serve(c)
	}
	db, _, err := loadDB(c)
	if err != nil {
		return err
	}
	defer db.Close()
	return batch(db, c)
}

// loadDB builds the DB a run serves: a durable one recovered from -dir
// (when set) or a fresh in-memory one, seeded from the -rel files and
// -updates deltas. With -dir, a -rel whose relation already exists in
// the recovered state is skipped — restarts keep the recovered (newer)
// data, and re-registering would fail anyway.
func loadDB(c config) (*wcoj.DB, map[string]bool, error) {
	var db *wcoj.DB
	loadStart := time.Now()
	if c.dir != "" {
		var err error
		if db, err = wcoj.OpenDir(c.dir); err != nil {
			return nil, nil, err
		}
		st := db.Stats()
		fmt.Printf("recovered %s: %d relations, %d tuples at epoch %d (%v)\n",
			c.dir, st.Relations, st.Tuples, st.Epoch, time.Since(loadStart))
	} else {
		db = wcoj.NewDB()
	}
	// dictRels records which relations were loaded with string
	// interning (LoadFile's .csv convention); /update uses it to
	// decide whether string tuple fields are meaningful for a
	// relation or a client error.
	dictRels := make(map[string]bool)
	for _, spec := range c.rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			db.Close()
			return nil, nil, fmt.Errorf("bad -rel %q, want NAME=path", spec)
		}
		dictRels[name] = strings.HasSuffix(path, ".csv")
		if _, exists := db.Relation(name); exists {
			fmt.Printf("kept recovered %s (ignoring %s)\n", name, path)
			continue
		}
		r, err := db.LoadFile(path, name)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		fmt.Printf("loaded %s: %d tuples (%v)\n", r, r.Len(), time.Since(loadStart))
	}
	for _, spec := range c.updates {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			db.Close()
			return nil, nil, fmt.Errorf("bad -updates %q, want NAME=path", spec)
		}
		// Mirror LoadFile's encoding convention: .csv relations were
		// interned through the DB dictionary, so .csv deltas intern the
		// same way; everything else is integer data.
		opt := wcoj.CSVOptions{}
		if strings.HasSuffix(path, ".csv") {
			opt.Dict = db.Dict()
		}
		us, err := db.ApplyDeltaFile(path, name, opt)
		if err != nil {
			db.Close()
			return nil, nil, fmt.Errorf("updates %s: %w", spec, err)
		}
		fmt.Printf("applied %s to %s: +%d -%d (noops +%d -%d, epoch %d)\n",
			path, name, us.Inserted, us.Deleted, us.InsertNoops, us.DeleteNoops, us.Epoch)
	}
	return db, dictRels, nil
}

// decodeJSON and writeJSON are the request/response codecs shared by
// the HTTP handlers.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// batch prepares every query, then re-executes the prepared set from
// `concurrency` goroutines `repeat` times each, reporting per-query
// answers and aggregate throughput.
func batch(db *wcoj.DB, c config) error {
	algo, err := wcoj.ParseAlgorithm(c.algo)
	if err != nil {
		return err
	}
	planner, err := wcoj.ParsePlanner(c.planner)
	if err != nil {
		return err
	}
	var in *os.File
	if c.queriesPath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(c.queriesPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	opts := wcoj.Options{Algorithm: algo, Planner: planner, Parallelism: c.parallel}
	var prepared []*wcoj.PreparedQuery
	prepStart := time.Now()
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pq, err := db.Prepare(line, opts)
		if err != nil {
			return fmt.Errorf("prepare %q: %w", line, err)
		}
		prepared = append(prepared, pq)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(prepared) == 0 {
		return fmt.Errorf("no queries in %s", c.queriesPath)
	}
	fmt.Printf("prepared %d queries in %v\n", len(prepared), time.Since(prepStart))

	if c.repeat < 1 {
		c.repeat = 1
	}
	if c.concurrency < 1 {
		c.concurrency = 1
	}
	type job struct{ pq *wcoj.PreparedQuery }
	jobs := make(chan job)
	var calls atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	runStart := time.Now()
	for w := 0; w < c.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for j := range jobs {
				if _, _, err := j.pq.Count(ctx); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				calls.Add(1)
			}
		}()
	}
	for i := 0; i < c.repeat; i++ {
		for _, pq := range prepared {
			jobs <- job{pq}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	elapsed := time.Since(runStart)
	for _, pq := range prepared {
		st := pq.Stats()
		fmt.Printf("%-60s calls=%d tuples=%d avg=%v\n",
			pq.Source(), st.Calls, st.Tuples/st.Calls, st.Duration/time.Duration(st.Calls))
	}
	fmt.Printf("%d calls in %v (%.0f queries/sec, concurrency %d)\n",
		calls.Load(), elapsed, float64(calls.Load())/elapsed.Seconds(), c.concurrency)
	return nil
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query   string   `json:"query"`
	Algo    string   `json:"algo,omitempty"`
	Planner string   `json:"planner,omitempty"`
	Project []string `json:"project,omitempty"`
	Count   bool     `json:"count,omitempty"`
	Exists  bool     `json:"exists,omitempty"`
	// Limit caps the rows returned (default 100, server maximum
	// 100000) and stops the enumeration there — a limited request
	// never materializes a huge result. Use Count for exact totals.
	Limit    int `json:"limit,omitempty"`
	Parallel int `json:"parallel,omitempty"`
}

// queryResponse is the POST /query reply. For row requests Count is
// the number of rows returned (enumeration stops at Limit; Truncated
// marks the cut); count/exists requests report exact answers.
type queryResponse struct {
	Count     int       `json:"count"`
	Exists    *bool     `json:"exists,omitempty"`
	Attrs     []string  `json:"attrs,omitempty"`
	Rows      [][]int64 `json:"rows,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
	ElapsedUS int64     `json:"elapsed_us"`
}

// updateRequest is the POST /update body: tuples to insert and delete
// per relation name. Tuple values are integers for integer-encoded
// relations, or strings for relations loaded with dictionary
// interning — strings round-trip through the same DB dictionary the
// CSV loader used, so [["alice","bob"]] means what it says (raw dict
// IDs would be meaningless to a caller). The whole request is applied
// as one atomic batch — concurrent queries see all of it or none of
// it — with deletes applied before inserts per relation.
type updateRequest struct {
	Insert map[string][][]any `json:"insert,omitempty"`
	Delete map[string][][]any `json:"delete,omitempty"`
}

// updateResponse is the POST /update reply. Noops count operations
// with no effect (duplicate inserts, absent deletes); Epoch is the
// DB's update epoch after the batch.
type updateResponse struct {
	Inserted    int    `json:"inserted"`
	Deleted     int    `json:"deleted"`
	InsertNoops int    `json:"insert_noops"`
	DeleteNoops int    `json:"delete_noops"`
	Epoch       uint64 `json:"epoch"`
	ElapsedUS   int64  `json:"elapsed_us"`
}

// handleUpdate folds one update request into the DB. dictRels says
// which relations were loaded with string interning: string fields
// are only accepted for those — interning a string against an
// integer-encoded relation would allocate a fresh dict ID and insert
// a bogus tuple while reporting success. Numbers are accepted either
// way (for a dict relation they are raw dict IDs, as returned by
// /query).
func handleUpdate(db *wcoj.DB, dictRels map[string]bool, req updateRequest) (*updateResponse, int, error) {
	batch := wcoj.NewBatch()
	toTuples := func(rel string, rows [][]any) ([]wcoj.Tuple, error) {
		out := make([]wcoj.Tuple, len(rows))
		for i, row := range rows {
			t := make(wcoj.Tuple, len(row))
			for j, v := range row {
				switch x := v.(type) {
				case float64: // every JSON number decodes here
					if x != float64(int64(x)) {
						return nil, fmt.Errorf("tuple %d field %d: %v is not an integer", i, j+1, x)
					}
					t[j] = wcoj.Value(int64(x))
				case string:
					if !dictRels[rel] {
						return nil, fmt.Errorf("tuple %d field %d: relation %q holds integers, not interned strings", i, j+1, rel)
					}
					t[j] = db.Dict().ID(x)
				case int: // in-process callers (tests) pass Go ints
					t[j] = wcoj.Value(x)
				default:
					return nil, fmt.Errorf("tuple %d field %d: want a number or string, got %T", i, j+1, v)
				}
			}
			out[i] = t
		}
		return out, nil
	}
	for rel, rows := range req.Delete {
		tuples, err := toTuples(rel, rows)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("delete %s: %w", rel, err)
		}
		batch.Delete(rel, tuples...)
	}
	for rel, rows := range req.Insert {
		tuples, err := toTuples(rel, rows)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("insert %s: %w", rel, err)
		}
		batch.Insert(rel, tuples...)
	}
	start := time.Now()
	us, err := db.Apply(batch)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &updateResponse{
		Inserted:    us.Inserted,
		Deleted:     us.Deleted,
		InsertNoops: us.InsertNoops,
		DeleteNoops: us.DeleteNoops,
		Epoch:       us.Epoch,
		ElapsedUS:   time.Since(start).Microseconds(),
	}, 0, nil
}

// errRowLimit aborts a row enumeration once Limit rows are streamed.
var errRowLimit = errors.New("row limit reached")

// maxRowLimit bounds client-supplied limits: the handler allocates the
// row buffer up front, so the cap must be server-controlled.
const maxRowLimit = 100000

// handleQuery resolves one request against the DB's plan cache. The
// request context cancels the join when the client goes away.
func handleQuery(ctx context.Context, db *wcoj.DB, req queryRequest) (*queryResponse, int, error) {
	opts := wcoj.Options{Project: req.Project, Parallelism: req.Parallel}
	if req.Algo != "" {
		a, err := wcoj.ParseAlgorithm(req.Algo)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Algorithm = a
	}
	if req.Planner != "" {
		p, err := wcoj.ParsePlanner(req.Planner)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Planner = p
	}
	pq, err := db.Prepare(req.Query, opts)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	start := time.Now()
	resp := &queryResponse{}
	switch {
	case req.Exists:
		found, _, err := pq.Exists(ctx)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Exists = &found
		if found {
			resp.Count = 1
		}
	case req.Count:
		n, _, err := pq.Count(ctx)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.Count = n
	default:
		limit := req.Limit
		if limit <= 0 {
			limit = 100
		}
		if limit > maxRowLimit {
			limit = maxRowLimit
		}
		attrs := pq.Query().Vars
		if len(req.Project) > 0 {
			attrs = req.Project
		}
		resp.Attrs = attrs
		capHint := limit
		if capHint > 1024 {
			capHint = 1024 // grow on demand past this; limit only caps
		}
		resp.Rows = make([][]int64, 0, capHint)
		_, err := pq.ExecuteFunc(ctx, func(t wcoj.Tuple) error {
			if len(resp.Rows) == limit {
				resp.Truncated = true
				return errRowLimit
			}
			row := make([]int64, len(t))
			for j, v := range t {
				row[j] = int64(v)
			}
			resp.Rows = append(resp.Rows, row)
			return nil
		})
		if err != nil && !errors.Is(err, errRowLimit) {
			return nil, http.StatusInternalServerError, err
		}
		resp.Count = len(resp.Rows)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	return resp, 0, nil
}
