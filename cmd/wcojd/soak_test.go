package main

// Soak test: a real wcojd process (this test binary re-exec'd through
// TestMain) serves mixed query+update traffic over a durable directory
// and is kill -9'd mid-flight, repeatedly. After every restart the
// recovered server must show no epoch regression, still hold every
// tuple whose insert it acknowledged, and hold no tuple it was never
// asked for — i.e. no acknowledged batch is lost and no batch is
// applied twice. The final round drains on SIGTERM and must exit 0.
//
// Skipped under -short: it spawns processes and runs for seconds.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"wcoj"
)

const (
	soakChildEnv = "WCOJD_SOAK_CHILD"
	soakDirEnv   = "WCOJD_SOAK_DIR"
	// soakBase offsets soak-inserted tuple keys away from the seed data.
	soakBase = 1 << 20
)

func TestMain(m *testing.M) {
	if os.Getenv(soakChildEnv) != "" {
		soakChild()
		return // unreachable: soakChild always exits
	}
	os.Exit(m.Run())
}

// soakChild runs the production serve() loop over the soak directory,
// exactly as `wcojd -dir DIR -serve 127.0.0.1:0` would.
func soakChild() {
	err := serve(config{
		serveAddr:    "127.0.0.1:0",
		dir:          os.Getenv(soakDirEnv),
		queryTimeout: 5 * time.Second,
		drainTimeout: 5 * time.Second,
		maxInflight:  16,
		maxBody:      1 << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// soakServer is one spawned wcojd process.
type soakServer struct {
	cmd *exec.Cmd
	url string
}

// startSoakServer re-execs the test binary as a wcojd child and parses
// the bound address off its "serving on ..." line.
func startSoakServer(t *testing.T, dir string) *soakServer {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), soakChildEnv+"=1", soakDirEnv+"="+dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if stderr.Len() > 0 {
			t.Logf("child stderr: %s", stderr.String())
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "serving on "); ok {
			addr, _, _ := strings.Cut(rest, " ")
			// Drain the rest of stdout so the child never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return &soakServer{cmd: cmd, url: "http://" + addr}
		}
	}
	t.Fatalf("child exited before announcing its address\nstderr: %s", stderr.String())
	return nil
}

// waitReady polls /readyz until recovery finishes, checking that
// liveness is already up while readiness is still coming.
func (s *soakServer) waitReady(t *testing.T, client *http.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if resp, err := client.Get(s.url + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("healthz during startup: %d", resp.StatusCode)
			}
		}
		resp, err := client.Get(s.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// soakEpoch reads the update epoch from /stats.
func (s *soakServer) soakEpoch(t *testing.T, client *http.Client) uint64 {
	t.Helper()
	resp, err := client.Get(s.url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct{ Epoch uint64 }
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Epoch
}

// soakUpdate inserts the k-th soak tuple. ok reports whether the
// server acknowledged it (anything else leaves the batch in doubt —
// possibly applied, never to be retried).
func soakUpdate(client *http.Client, url string, k int) (epoch uint64, ok bool) {
	body := fmt.Sprintf(`{"insert":{"E":[[%d,%d]]}}`, soakBase+k, k)
	resp, err := client.Post(url+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return 0, false
	}
	var ur struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return 0, false
	}
	return ur.Epoch, true
}

// checkTuples fetches the full relation and cross-checks it against
// the acknowledgment ledger: acked ⊆ present ⊆ attempted.
func (s *soakServer) checkTuples(t *testing.T, client *http.Client, acked map[int]bool, attempted int) {
	t.Helper()
	resp, err := client.Post(s.url+"/query", "application/json",
		strings.NewReader(`{"query":"Q(A,B) :- E(A,B)","limit":100000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Rows      [][]int64 `json:"rows"`
		Truncated bool      `json:"truncated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Truncated {
		t.Fatal("soak relation outgrew the row limit")
	}
	present := make(map[int]bool)
	for _, row := range qr.Rows {
		if row[0] >= soakBase {
			present[int(row[0]-soakBase)] = true
		}
	}
	for k := range acked {
		if !present[k] {
			t.Fatalf("lost acknowledged batch %d after restart", k)
		}
	}
	for k := range present {
		if k >= attempted {
			t.Fatalf("phantom batch %d: tuple present but never requested", k)
		}
	}
}

func TestSoakCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: spawns processes and runs for seconds")
	}
	dir := t.TempDir()
	seed, err := wcoj.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = seed.Register(wcoj.NewRelation("E", []string{"src", "dst"}, []wcoj.Tuple{
		{1, 2}, {2, 3}, {1, 3},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	client := &http.Client{Timeout: 3 * time.Second}
	acked := make(map[int]bool)
	attempted := 0
	var lastEpoch uint64

	const rounds = 5
	for round := 0; round < rounds; round++ {
		srv := startSoakServer(t, dir)
		srv.waitReady(t, client)

		// Recovery invariants before new traffic.
		epoch := srv.soakEpoch(t, client)
		if epoch < lastEpoch {
			t.Fatalf("round %d: epoch regressed across kill -9: %d < %d", round, epoch, lastEpoch)
		}
		lastEpoch = epoch
		srv.checkTuples(t, client, acked, attempted)

		// Mixed traffic until the kill timer fires mid-flight.
		killDelay := time.Duration(150+rng.Intn(500)) * time.Millisecond
		timer := time.AfterFunc(killDelay, func() { srv.cmd.Process.Kill() })
		for {
			k := attempted
			attempted++
			epoch, ok := soakUpdate(client, srv.url, k)
			if !ok {
				break // killed mid-request: batch k stays in doubt
			}
			acked[k] = true
			if epoch > lastEpoch {
				lastEpoch = epoch
			}
			if k%5 == 0 {
				resp, err := client.Post(srv.url+"/query", "application/json",
					strings.NewReader(`{"query":"Q(A,B) :- E(A,B)","count":true}`))
				if err == nil {
					resp.Body.Close()
				}
			}
		}
		timer.Stop()
		srv.cmd.Process.Kill()
		srv.cmd.Wait()
	}
	if len(acked) == 0 {
		t.Fatal("vacuous soak: no update was ever acknowledged")
	}

	// Final round: recover once more, verify, then drain cleanly.
	srv := startSoakServer(t, dir)
	srv.waitReady(t, client)
	epoch := srv.soakEpoch(t, client)
	if epoch < lastEpoch {
		t.Fatalf("final epoch regressed: %d < %d", epoch, lastEpoch)
	}
	// Every effective batch moved the epoch by one, so the epoch counts
	// applied batches: fewer than the acks means one was lost, more
	// than the attempts means one was applied twice.
	if epoch < uint64(len(acked)) || epoch > uint64(attempted) {
		t.Fatalf("final epoch %d outside [acked=%d, attempted=%d]", epoch, len(acked), attempted)
	}
	srv.checkTuples(t, client, acked, attempted)

	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr := srv.cmd.Wait()
	var ee *exec.ExitError
	if werr != nil && (!errors.As(werr, &ee) || ee.ExitCode() != 0) {
		t.Fatalf("drain exit: %v", werr)
	}

	// The drain released the WAL: the directory opens directly and
	// still carries every acknowledged tuple.
	db, err := wcoj.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rel, ok := db.Relation("E")
	if !ok {
		t.Fatal("relation E lost")
	}
	for k := range acked {
		if !rel.Contains(wcoj.Tuple{soakBase + wcoj.Value(k), wcoj.Value(k)}) {
			t.Fatalf("acknowledged tuple %d missing after clean drain", k)
		}
	}
}
