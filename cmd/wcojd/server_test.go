package main

// In-process tests of the serving layer: admission gates, probe
// semantics and the /metrics exposition, driven through real HTTP
// round trips against the production handler.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wcoj"
	"wcoj/internal/dataset"
)

// testConfig returns serving limits generous enough to stay invisible
// unless a test tightens one on purpose.
func testConfig() config {
	return config{
		queryTimeout: 5 * time.Second,
		drainTimeout: time.Second,
		maxInflight:  8,
		maxBody:      1 << 20,
	}
}

// newTestServer stands up the production handler around db (nil = the
// background load has not finished yet).
func newTestServer(t *testing.T, db *wcoj.DB, c config) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(c)
	if db != nil {
		s.dictRels = map[string]bool{}
		s.db.Store(db)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServerMetrics(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), testConfig())

	if code, body := post(t, ts.URL+"/query", `{"query":"Q(A,B) :- E(A,B)","count":true}`); code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/update", `{"insert":{"E":[[7,8]]}}`); code != 200 {
		t.Fatalf("update: %d %s", code, body)
	}
	if code, _ := post(t, ts.URL+"/query", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type: %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		`wcojd_requests_total{handler="query",code="200"} 1`,
		`wcojd_requests_total{handler="query",code="400"} 1`,
		`wcojd_requests_total{handler="update",code="200"} 1`,
		"wcojd_queries_total 1",
		"wcojd_updates_total 1",
		"wcojd_inflight_requests 0",
		"wcojd_ready 1",
		"wcojd_db_epoch 1",
		"wcojd_db_relations 1",
		"# TYPE wcojd_requests_total counter",
		"# TYPE wcojd_db_epoch gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestServerReadiness walks the lifecycle the probes are for: loading
// (live but not ready), serving, draining (live but not ready again).
func TestServerReadiness(t *testing.T) {
	s, ts := newTestServer(t, nil, testConfig())

	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz while loading: %d", code)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Fatalf("readyz while loading: %d %q", code, body)
	}
	if code, _ := post(t, ts.URL+"/query", `{"query":"Q(A,B) :- E(A,B)"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("query while loading: %d, want 503", code)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "wcojd_ready 0") {
		t.Fatal("metrics must report not-ready while loading")
	}

	// The background load finishes.
	s.dictRels = map[string]bool{}
	s.db.Store(testDB(t))
	if code, _ := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz after load: %d", code)
	}
	if code, body := post(t, ts.URL+"/query", `{"query":"Q(A,B) :- E(A,B)","count":true}`); code != 200 {
		t.Fatalf("query after load: %d %s", code, body)
	}

	// SIGTERM: drain. Ready flips off, liveness stays on.
	s.draining.Store(true)
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz while draining: %d %q", code, body)
	}
	if code, _ := post(t, ts.URL+"/update", `{"insert":{"E":[[9,9]]}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("update while draining: %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz while draining: %d", code)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "wcojd_ready 0") {
		t.Fatal("metrics must report not-ready while draining")
	}
}

// TestServerOverload fills the admission semaphore and expects
// immediate load shedding, not queueing.
func TestServerOverload(t *testing.T) {
	c := testConfig()
	c.maxInflight = 1
	s, ts := newTestServer(t, testDB(t), c)

	s.sem <- struct{}{} // a request is in flight
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query":"Q(A,B) :- E(A,B)","count":true}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After: %q", ra)
	}
	<-s.sem // the in-flight request finishes
	if code, body := post(t, ts.URL+"/query", `{"query":"Q(A,B) :- E(A,B)","count":true}`); code != 200 {
		t.Fatalf("after release: %d %s", code, body)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, `wcojd_rejected_total{reason="overload"} 1`) {
		t.Fatal("overload rejection not counted")
	}
}

// TestServerDeadline runs a query under an expired budget of time and
// expects 504, not a hung connection.
func TestServerDeadline(t *testing.T) {
	c := testConfig()
	c.queryTimeout = time.Nanosecond
	_, ts := newTestServer(t, testDB(t), c)
	if code, body := post(t, ts.URL+"/query", `{"query":"Q(A,B) :- E(A,B)","count":true}`); code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d %s, want 504", code, body)
	}
}

// TestServerNodeBudget gives queries a one-node budget: any real join
// must exhaust it and be answered 422 (the request's own fault, not
// the server's).
func TestServerNodeBudget(t *testing.T) {
	db := wcoj.NewDB()
	if err := db.Register(dataset.RandomGraph(100, 2000, 3)); err != nil {
		t.Fatal(err)
	}
	c := testConfig()
	c.nodeBudget = 1
	_, ts := newTestServer(t, db, c)
	code, body := post(t, ts.URL+"/query", `{"query":"Q(A,B,C) :- E(A,B), E(B,C), E(A,C)","count":true}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("budget exhaustion: %d %s, want 422", code, body)
	}
}

// TestServerBodyCap sends a body past -max-body and expects 413.
func TestServerBodyCap(t *testing.T) {
	c := testConfig()
	c.maxBody = 256
	_, ts := newTestServer(t, testDB(t), c)
	big := fmt.Sprintf(`{"query":"Q(A,B) :- E(A,B)","project":["%s"]}`, strings.Repeat("A", 1024))
	if code, body := post(t, ts.URL+"/query", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s, want 413", code, body)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), testConfig())
	if code, _ := get(t, ts.URL+"/query"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d, want 405", code)
	}
}
