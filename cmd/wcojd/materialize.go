package main

// Maintained-query endpoints: POST /materialize registers a standing
// query the engine keeps continuously correct across /update batches
// (see wcoj.DB.Materialize), GET /materialized lists the live views,
// GET /materialized/{id} reads one (rows mode includes the maintained
// tuples), and DELETE /materialized/{id} retires it. Reading a view is
// one atomic pointer load — no join runs, which is the point: the
// differential work already happened inside the update that changed
// the answer.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"wcoj"
)

// materializeRequest is the POST /materialize body. Mode defaults to
// "count"; "rows" maintains the full (optionally projected) result
// set, "exists" a boolean.
type materializeRequest struct {
	Query    string   `json:"query"`
	Mode     string   `json:"mode,omitempty"`
	Project  []string `json:"project,omitempty"`
	Algo     string   `json:"algo,omitempty"`
	Parallel int      `json:"parallel,omitempty"`
}

// materializedView is one maintained view as reported by /materialize,
// /materialized and /stats. Epoch is the update epoch the value is
// current as of; Stale marks a view whose last maintenance failed (its
// value is the newest good one, Error says why, and the next update
// heals it by recomputing). Rows appear only on GET /materialized/{id}
// for rows-mode views, capped at the server row limit.
type materializedView struct {
	ID        string    `json:"id"`
	Query     string    `json:"query"`
	Mode      string    `json:"mode"`
	Project   []string  `json:"project,omitempty"`
	Epoch     uint64    `json:"epoch"`
	Count     int64     `json:"count"`
	Exists    *bool     `json:"exists,omitempty"`
	Attrs     []string  `json:"attrs,omitempty"`
	Rows      [][]int64 `json:"rows,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
	Stale     bool      `json:"stale,omitempty"`
	ElapsedUS int64     `json:"elapsed_us,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// viewOf snapshots one maintained view for a JSON reply. withRows
// additionally copies the maintained tuples out (rows mode only),
// sorted for a stable wire order and capped at maxRowLimit.
func viewOf(mq *wcoj.MaterializedQuery, withRows bool) materializedView {
	res := mq.Result()
	v := materializedView{
		ID:      mq.ID(),
		Query:   mq.Source(),
		Mode:    mq.Mode().String(),
		Project: mq.Options().Project,
		Epoch:   res.Epoch,
		Count:   res.Count,
	}
	if mq.Mode() == wcoj.MaterializeExists {
		found := res.Count != 0
		v.Exists = &found
	}
	if res.Err != nil {
		v.Stale = true
		v.Error = res.Err.Error()
	}
	if withRows && mq.Mode() == wcoj.MaterializeRows && res.Rows != nil {
		v.Attrs = res.Rows.Attrs()
		rows := res.Rows
		if sorted, err := rows.SortedBy(rows.Attrs()); err == nil {
			rows = sorted
		}
		n := rows.Len()
		if n > maxRowLimit {
			n = maxRowLimit
			v.Truncated = true
		}
		v.Rows = make([][]int64, n)
		var buf wcoj.Tuple
		for i := 0; i < n; i++ {
			buf = rows.Tuple(i, buf[:0])
			row := make([]int64, len(buf))
			for j, val := range buf {
				row[j] = int64(val)
			}
			v.Rows[i] = row
		}
	}
	return v
}

// handleMaterialize registers one maintained view. Registration runs a
// full initial computation, so it passes through the same admission
// gates as a query.
func handleMaterialize(db *wcoj.DB, req materializeRequest) (*materializedView, int, error) {
	opts := wcoj.MaterializeOptions{Project: req.Project, Parallelism: req.Parallel}
	if req.Mode != "" {
		m, err := wcoj.ParseMaterializeMode(req.Mode)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Mode = m
	}
	if req.Algo != "" {
		a, err := wcoj.ParseAlgorithm(req.Algo)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		opts.Algorithm = a
	}
	start := time.Now()
	mq, err := db.Materialize(req.Query, opts)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	v := viewOf(mq, false)
	v.ElapsedUS = time.Since(start).Microseconds()
	return &v, 0, nil
}

func (s *server) handleMaterializeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.m.countRequest("materialize", http.StatusMethodNotAllowed)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w, "materialize")
	if !ok {
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req materializeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		code := statusOf(err, http.StatusBadRequest)
		s.m.countRequest("materialize", code)
		http.Error(w, err.Error(), code)
		return
	}
	resp, status, err := handleMaterialize(s.db.Load(), req)
	if err != nil {
		code := statusOf(err, status)
		s.m.countRequest("materialize", code)
		http.Error(w, err.Error(), code)
		return
	}
	s.m.countRequest("materialize", http.StatusOK)
	writeJSON(w, resp)
}

// handleMaterializedHTTP serves /materialized (GET: list) and
// /materialized/{id} (GET: one view with rows; DELETE: retire).
// Reads need no admission slot — they are atomic loads, and staying
// readable under overload is half their value — but DELETE writes the
// WAL, so it takes one.
func (s *server) handleMaterializedHTTP(w http.ResponseWriter, r *http.Request) {
	db := s.db.Load()
	if db == nil {
		s.reject(w, "materialized", "not_ready", http.StatusServiceUnavailable, "loading")
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/materialized"), "/")
	switch {
	case r.Method == http.MethodGet && id == "":
		views := db.MaterializedViews()
		out := make([]materializedView, len(views))
		for i, mq := range views {
			out[i] = viewOf(mq, false)
		}
		s.m.countRequest("materialized", http.StatusOK)
		writeJSON(w, out)
	case r.Method == http.MethodGet:
		mq, ok := db.Materialized(id)
		if !ok {
			s.m.countRequest("materialized", http.StatusNotFound)
			http.Error(w, fmt.Sprintf("no materialized view %q", id), http.StatusNotFound)
			return
		}
		v := viewOf(mq, true)
		s.m.countRequest("materialized", http.StatusOK)
		writeJSON(w, v)
	case r.Method == http.MethodDelete && id != "":
		release, ok := s.admit(w, "materialized")
		if !ok {
			return
		}
		defer release()
		mq, ok := db.Materialized(id)
		if !ok {
			s.m.countRequest("materialized", http.StatusNotFound)
			http.Error(w, fmt.Sprintf("no materialized view %q", id), http.StatusNotFound)
			return
		}
		if err := mq.Close(); err != nil {
			s.m.countRequest("materialized", http.StatusInternalServerError)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.m.countRequest("materialized", http.StatusOK)
		writeJSON(w, map[string]string{"closed": id})
	default:
		s.m.countRequest("materialized", http.StatusMethodNotAllowed)
		http.Error(w, "GET or DELETE", http.StatusMethodNotAllowed)
	}
}

// materializedMetrics appends the per-view gauges to the /metrics
// exposition. Cardinality is operator-bounded: one label set per
// registered view.
func materializedMetrics(db *wcoj.DB, f func(format string, args ...any)) {
	views := db.MaterializedViews()
	f("# HELP wcojd_materialized_views Maintained views currently registered.\n")
	f("# TYPE wcojd_materialized_views gauge\n")
	f("wcojd_materialized_views %d\n", len(views))
	if len(views) == 0 {
		return
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID() < views[j].ID() })
	f("# HELP wcojd_materialized_epoch Update epoch each view is current as of.\n")
	f("# TYPE wcojd_materialized_epoch gauge\n")
	for _, mq := range views {
		f("wcojd_materialized_epoch{id=%q} %d\n", mq.ID(), mq.Result().Epoch)
	}
	f("# HELP wcojd_materialized_count Maintained count of each view.\n")
	f("# TYPE wcojd_materialized_count gauge\n")
	for _, mq := range views {
		f("wcojd_materialized_count{id=%q} %d\n", mq.ID(), mq.Result().Count)
	}
	f("# HELP wcojd_materialized_stale Whether the view's last maintenance failed (1 = serving its newest good value).\n")
	f("# TYPE wcojd_materialized_stale gauge\n")
	for _, mq := range views {
		stale := 0
		if mq.Result().Err != nil {
			stale = 1
		}
		f("wcojd_materialized_stale{id=%q} %d\n", mq.ID(), stale)
	}
}
