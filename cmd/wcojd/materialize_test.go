package main

// HTTP round trips for the maintained-view endpoints: register, read
// back after updates, list, stats/metrics exposure, and retirement.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestMaterializeEndpoints(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), testConfig())

	// Register a maintained triangle count over the 3-path seed (one
	// triangle once 3->1 closes the cycle; zero now).
	code, body := post(t, ts.URL+"/materialize", `{"query":"Q(A,B,C) :- E(A,B), E(B,C), E(C,A)"}`)
	if code != 200 {
		t.Fatalf("materialize: %d %s", code, body)
	}
	var v materializedView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Mode != "count" || v.Count != 0 || v.Stale {
		t.Fatalf("initial view: %+v", v)
	}

	// A rows-mode view over the same edges.
	code, body = post(t, ts.URL+"/materialize", `{"query":"P(A,B,C) :- E(A,B), E(B,C)","mode":"rows","project":["A","C"]}`)
	if code != 200 {
		t.Fatalf("materialize rows: %d %s", code, body)
	}
	var rv materializedView
	if err := json.Unmarshal([]byte(body), &rv); err != nil {
		t.Fatal(err)
	}

	// Close the triangle: both views must advance in the same update.
	if code, body := post(t, ts.URL+"/update", `{"insert":{"E":[[3,1]]}}`); code != 200 {
		t.Fatalf("update: %d %s", code, body)
	}
	code, body = get(t, ts.URL+"/materialized/"+v.ID)
	if code != 200 {
		t.Fatalf("get view: %d %s", code, body)
	}
	var after materializedView
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Count != 3 { // the cycle in each rotation
		t.Fatalf("triangle count after closing cycle: %+v", after)
	}
	if after.Epoch != 1 {
		t.Fatalf("view epoch: %d, want 1", after.Epoch)
	}

	// Rows mode returns the maintained tuples on the single-view GET.
	code, body = get(t, ts.URL+"/materialized/"+rv.ID)
	if code != 200 {
		t.Fatalf("get rows view: %d %s", code, body)
	}
	var rows materializedView
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows.Attrs) != 2 || int64(len(rows.Rows)) != rows.Count || rows.Count == 0 {
		t.Fatalf("rows view: %+v", rows)
	}

	// List shows both, without rows.
	code, body = get(t, ts.URL+"/materialized")
	if code != 200 {
		t.Fatalf("list: %d %s", code, body)
	}
	var list []materializedView
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Rows != nil || list[1].Rows != nil {
		t.Fatalf("list: %+v", list)
	}

	// /stats embeds the views; /metrics exposes the gauges.
	if code, body := get(t, ts.URL+"/stats"); code != 200 || !strings.Contains(body, `"materialized"`) {
		t.Fatalf("stats: %d %s", code, body)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"wcojd_materialized_views 2",
		`wcojd_materialized_count{id="` + v.ID + `"} 3`,
		`wcojd_materialized_epoch{id="` + v.ID + `"} 1`,
		`wcojd_materialized_stale{id="` + v.ID + `"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Retire the rows view; it must vanish from the list, and a second
	// DELETE must 404.
	if code, body := del(t, ts.URL+"/materialized/"+rv.ID); code != 200 {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/materialized/"+rv.ID); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", code)
	}
	if code, _ := del(t, ts.URL+"/materialized/"+rv.ID); code != http.StatusNotFound {
		t.Fatalf("delete after delete: %d, want 404", code)
	}
	_, metrics = get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "wcojd_materialized_views 1") {
		t.Error("metrics still count the retired view")
	}
}

func TestMaterializeEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, testDB(t), testConfig())

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"query":"Q(A) :- Missing(A)"}`, http.StatusBadRequest},
		{`{"query":"Q(A,B) :- E(A,B)","mode":"median"}`, http.StatusBadRequest},
		{`{"query":"Q(A,B) :- E(A,B)","mode":"exists","project":["A"]}`, http.StatusBadRequest},
		{`{"query":"Q(A,B) :- E(A,B)","algo":"bogus"}`, http.StatusBadRequest},
	} {
		if code, body := post(t, ts.URL+"/materialize", tc.body); code != tc.want {
			t.Errorf("materialize %s: %d %s, want %d", tc.body, code, body, tc.want)
		}
	}
	if code, _ := get(t, ts.URL+"/materialize"); code != http.StatusMethodNotAllowed {
		t.Error("GET /materialize must 405")
	}
	if code, _ := get(t, ts.URL+"/materialized/nope"); code != http.StatusNotFound {
		t.Error("unknown id must 404")
	}
	if code, _ := post(t, ts.URL+"/materialized", `{}`); code != http.StatusMethodNotAllowed {
		t.Error("POST /materialized must 405")
	}

	// Not ready: nil DB rejects with 503 on every materialize surface.
	_, loading := newTestServer(t, nil, testConfig())
	if code, _ := post(t, loading.URL+"/materialize", `{"query":"Q(A,B) :- E(A,B)"}`); code != http.StatusServiceUnavailable {
		t.Error("materialize while loading must 503")
	}
	if code, _ := get(t, loading.URL+"/materialized"); code != http.StatusServiceUnavailable {
		t.Error("materialized while loading must 503")
	}
}
