package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"wcoj"
)

func testDB(t *testing.T) *wcoj.DB {
	t.Helper()
	db := wcoj.NewDB()
	err := db.Register(wcoj.NewRelation("E", []string{"src", "dst"}, []wcoj.Tuple{
		{1, 2}, {2, 3}, {1, 3},
	}))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestHandleUpdateThenQuery(t *testing.T) {
	db := testDB(t)
	// Insert the second half of a diamond; delete one original edge.
	resp, status, err := handleUpdate(db, nil, updateRequest{
		Insert: map[string][][]any{"E": {{3, 4}, {2, 4}, {1, 2}}},
		Delete: map[string][][]any{"E": {{1, 3}, {9, 9}}},
	})
	if err != nil {
		t.Fatalf("status %d: %v", status, err)
	}
	if resp.Inserted != 2 || resp.InsertNoops != 1 || resp.Deleted != 1 || resp.DeleteNoops != 1 {
		t.Fatalf("update response: %+v", resp)
	}
	if resp.Epoch == 0 {
		t.Fatal("epoch did not advance")
	}
	q, status, err := handleQuery(context.Background(), db, queryRequest{
		Query: "Q(A,B) :- E(A,B)",
		Count: true,
	})
	if err != nil {
		t.Fatalf("status %d: %v", status, err)
	}
	if q.Count != 4 { // {1,2},{2,3},{3,4},{2,4}
		t.Fatalf("count after update: %d, want 4", q.Count)
	}
}

func TestHandleUpdateErrors(t *testing.T) {
	db := testDB(t)
	if _, _, err := handleUpdate(db, nil, updateRequest{
		Insert: map[string][][]any{"missing": {{1, 2}}},
	}); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, _, err := handleUpdate(db, nil, updateRequest{
		Insert: map[string][][]any{"E": {{1}}},
	}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// An empty update is a no-op, not an error.
	resp, _, err := handleUpdate(db, nil, updateRequest{})
	if err != nil || resp.Inserted != 0 || resp.Deleted != 0 {
		t.Fatalf("empty update: %+v, %v", resp, err)
	}
}

func TestUpdatesFlagFile(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "delta.txt")
	if err := os.WriteFile(path, []byte("+,3,4\n-,1,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	us, err := db.ApplyDeltaFile(path, "E", wcoj.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if us.Inserted != 1 || us.Deleted != 1 {
		t.Fatalf("delta file stats: %+v", us)
	}
	r, ok := db.Relation("E")
	if !ok || !r.Contains(wcoj.Tuple{3, 4}) || r.Contains(wcoj.Tuple{1, 3}) {
		t.Fatalf("delta file not applied: %v", r.Tuples())
	}
}

func TestHandleUpdateStringTuples(t *testing.T) {
	db := wcoj.NewDB()
	dict := db.Dict()
	err := db.Register(wcoj.NewRelation("F", []string{"a", "b"}, []wcoj.Tuple{
		{dict.ID("alice"), dict.ID("bob")},
	}))
	if err != nil {
		t.Fatal(err)
	}
	dictRels := map[string]bool{"F": true}
	resp, status, err := handleUpdate(db, dictRels, updateRequest{
		Insert: map[string][][]any{"F": {{"bob", "carol"}}},
		Delete: map[string][][]any{"F": {{"alice", "bob"}}},
	})
	if err != nil {
		t.Fatalf("status %d: %v", status, err)
	}
	if resp.Inserted != 1 || resp.Deleted != 1 {
		t.Fatalf("string update: %+v", resp)
	}
	r, _ := db.Relation("F")
	bob, _ := dict.Lookup("bob")
	carol, _ := dict.Lookup("carol")
	if !r.Contains(wcoj.Tuple{bob, carol}) || r.Len() != 1 {
		t.Fatalf("string tuples not applied: %v", r.Tuples())
	}
	// Non-integral numbers and unsupported types are rejected.
	if _, _, err := handleUpdate(db, dictRels, updateRequest{
		Insert: map[string][][]any{"F": {{1.5, "x"}}},
	}); err == nil {
		t.Fatal("non-integral number must fail")
	}
	if _, _, err := handleUpdate(db, dictRels, updateRequest{
		Insert: map[string][][]any{"F": {{true, "x"}}},
	}); err == nil {
		t.Fatal("bool field must fail")
	}
	// String fields against an integer-encoded relation are a client
	// error, not a silent dict allocation.
	if _, _, err := handleUpdate(db, dictRels, updateRequest{
		Insert: map[string][][]any{"G": {{"alice", "bob"}}},
	}); err == nil {
		t.Fatal("string fields for a non-dict relation must fail")
	}
}
