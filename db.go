package wcoj

// The long-lived engine. One-shot Execute re-derives everything per
// call: the plan (variable order, possibly cost-based LP solves over
// freshly measured degree statistics), the agg classification, and the
// atom tries (served from a process-global cache shared with every
// other caller). DB is the serving-shape alternative: it owns named
// relations and a private trie store, and Prepare compiles a query
// once into a PreparedQuery whose plan is re-executed concurrently by
// any number of goroutines with per-call Stats and context
// cancellation — the pod-style shape of many tenants hitting shared,
// pre-built state.
//
// Relations are mutable through Insert/Delete/Apply: each named
// relation's head is an epoch-versioned snapshot (internal/delta) of
// an immutable base plus a small delta log, published atomically per
// batch. Readers resolve a consistent snapshot at execution start and
// keep it for the whole call (MVCC-style: writers advance the head,
// in-flight executions never observe a half-applied batch), and
// prepared plans survive updates — only the touched relation's
// per-binding tries are re-versioned (by linear level merge, not
// re-sort), never the plan. See dbmutate.go for the write path.

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wcoj/internal/agg"
	"wcoj/internal/core"
	"wcoj/internal/delta"
	"wcoj/internal/lftj"
	"wcoj/internal/planner"
	"wcoj/internal/query"
	"wcoj/internal/relation"
	"wcoj/internal/wal"
)

// CSVOptions configure DB.LoadCSV / ReadCSV; see
// internal/relation.CSVOptions for field semantics.
type CSVOptions = relation.CSVOptions

// DB is a long-lived query engine: a named collection of mutable
// relations (epoch-versioned snapshots over immutable storage), a
// private bounded trie store holding their indexes, and a cache of
// prepared plans. All methods are safe for concurrent use; every
// execution of a PreparedQuery reads one consistent snapshot of the
// data, even while Insert/Delete/Apply advance it concurrently.
type DB struct {
	mu       sync.RWMutex
	data     *Database                 //wcojlint:guardedby mu
	versions map[string]*delta.Version //wcojlint:guardedby mu
	store    *core.TrieStore

	// writeMu serializes the writers (Register, Apply, Compact); the
	// read path never takes it.
	writeMu sync.Mutex
	// wal, when non-nil, is the write-ahead log of a durable DB (see
	// OpenDir): writers append (and fsync) their change before
	// publishing it. walDictN is the dictionary high-water mark already
	// logged; walClosed marks a Close()d durable DB, whose writers must
	// fail rather than silently continue non-durably.
	wal       *wal.Log //wcojlint:guardedby writeMu
	walDictN  int      //wcojlint:guardedby writeMu
	walClosed bool     //wcojlint:guardedby writeMu
	// updEpoch counts published update batches. Prepared-query states
	// compare against it with one atomic load to detect staleness; it
	// is only ever advanced while holding mu, so a snapshot of
	// (updEpoch, versions) taken under mu.RLock is consistent.
	updEpoch atomic.Uint64

	// compactRatio (float64 bits) and compactMinBase gate background
	// compaction; the ratio is atomic so sweeps re-arming themselves
	// read it without any lock. compacting marks relations with a
	// sweep in flight (guarded by mu).
	compactRatio   atomic.Uint64
	compactMinBase int
	compacting     map[string]bool //wcojlint:guardedby mu

	// Update counters (see DBStats).
	batches, inserts, deletes atomic.Uint64
	insertNoops, deleteNoops  atomic.Uint64
	compactions               atomic.Uint64

	// views holds the maintained queries (see dbmaterialize.go): writers
	// mutate the registry under writeMu and publish membership changes
	// under mu, so Apply's maintenance pass and a snapshot reader agree
	// on which views exist at an epoch. matSeq allocates view ids.
	views  map[string]*MaterializedQuery //wcojlint:guardedby mu
	matSeq uint64                        //wcojlint:guardedby writeMu

	plansMu    sync.Mutex
	plans      map[string]*planCacheEntry //wcojlint:guardedby plansMu
	planLimit  int                        //wcojlint:guardedby plansMu
	planClock  uint64                     //wcojlint:guardedby plansMu
	gen        uint64                     //wcojlint:guardedby plansMu — bumped by Register; guards stale plan inserts
	planHits   atomic.Uint64
	planMisses atomic.Uint64
}

// planCacheEntry is one resident prepared plan with its recency stamp
// (guarded by plansMu).
type planCacheEntry struct {
	pq    *PreparedQuery
	stamp uint64
}

// DefaultPlanCacheLimit bounds a DB's plan cache. Each entry pins its
// bound relations and built plans, so — like the trie store — the
// cache must not grow without bound under adversarial query shapes
// (e.g. a serving daemon fed arbitrary client text); past the limit
// the least-recently-prepared entries are dropped and will replan on
// next use.
const DefaultPlanCacheLimit = 512

// NewDB returns an empty engine whose trie store starts at the default
// byte budget (see SetTrieCacheLimit to change it).
func NewDB() *DB {
	db := &DB{
		data:           relation.NewDatabase(),
		versions:       make(map[string]*delta.Version),
		store:          core.NewTrieStore(core.DefaultTrieCacheLimit),
		compactMinBase: defaultCompactionMinBase,
		compacting:     make(map[string]bool),
		views:          make(map[string]*MaterializedQuery),
		plans:          make(map[string]*planCacheEntry),
		planLimit:      DefaultPlanCacheLimit,
	}
	db.compactRatio.Store(math.Float64bits(DefaultCompactionRatio))
	return db
}

// Register stores (or replaces) relations under their own names, each
// as a fresh epoch-0 snapshot with an empty delta. Replacing a
// relation drops every cached plan — prepared queries held by callers
// stay valid against the data they were bound to, but new Prepare
// calls see the new relation (a held handle converges to the new data
// at its next snapshot refresh, i.e. after any subsequent update
// batch). Tries of replaced relations age out of the store by LRU.
// For incremental changes use Insert/Delete/Apply instead: they keep
// the base storage, the built tries and all prepared plans.
func (db *DB) Register(rels ...*Relation) error {
	for _, r := range rels {
		if r == nil {
			return fmt.Errorf("wcoj: Register: nil relation")
		}
	}
	db.writeMu.Lock()
	if db.walClosed {
		db.writeMu.Unlock()
		return fmt.Errorf("wcoj: Register: DB is closed")
	}
	if err := db.walAppendRegisterLocked(rels); err != nil {
		db.writeMu.Unlock()
		return err
	}
	db.mu.Lock()
	for _, r := range rels {
		db.data.Put(r)
		db.versions[r.Name()] = delta.New(r)
	}
	db.mu.Unlock()
	// Replacing a relation invalidates any differential state bound to
	// it, and there is no per-batch delta to fold — recompute every
	// maintained view from scratch before releasing the writer lock.
	db.rematerializeAllLocked()
	db.writeMu.Unlock()
	db.plansMu.Lock()
	db.plans = make(map[string]*planCacheEntry)
	db.gen++
	db.plansMu.Unlock()
	return nil
}

// SetPlanCacheLimit replaces the plan cache's entry budget and returns
// the previous one; limits <= 0 disable plan caching (every Prepare
// replans). The default is DefaultPlanCacheLimit.
func (db *DB) SetPlanCacheLimit(n int) int {
	db.plansMu.Lock()
	defer db.plansMu.Unlock()
	prev := db.planLimit
	db.planLimit = n
	db.evictPlansLocked()
	return prev
}

// evictPlansLocked drops least-recently-prepared entries until the
// cache fits its budget. Callers hold plansMu.
func (db *DB) evictPlansLocked() {
	limit := db.planLimit
	if limit < 0 {
		limit = 0
	}
	for len(db.plans) > limit {
		var oldestKey string
		oldest := uint64(0)
		first := true
		for k, e := range db.plans {
			if first || e.stamp < oldest {
				oldestKey, oldest, first = k, e.stamp, false
			}
		}
		delete(db.plans, oldestKey)
	}
}

// LoadCSV reads a relation from delimited text (see CSVOptions; the
// zero value reads comma-separated integer data with a header row) and
// registers it. When opt.Dict is nil and the data is non-integer, set
// Dict to db.Dict() — or any *Dict — to intern strings.
func (db *DB) LoadCSV(r io.Reader, name string, opt CSVOptions) (*Relation, error) {
	rel, err := relation.ReadCSV(r, name, opt)
	if err != nil {
		return nil, err
	}
	if err := db.Register(rel); err != nil {
		return nil, err
	}
	return rel, nil
}

// LoadCSVFile is LoadCSV over a file path. Paths ending in .tsv or
// .tab default the delimiter to a tab when opt.Comma is unset.
func (db *DB) LoadCSVFile(path, name string, opt CSVOptions) (*Relation, error) {
	if opt.Comma == 0 && (strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".tab")) {
		opt.Comma = '\t'
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return db.LoadCSV(f, name, opt)
}

// LoadFile registers a relation from a file, dispatching on the
// extension: .csv loads through the CSV reader with strings interned
// via the DB dictionary; everything else loads as plain integer TSV
// (the cmd/wcojgen format). Both commands (cmd/wcoj, cmd/wcojd) load
// through here, so a given -rel flag means the same thing everywhere.
func (db *DB) LoadFile(path, name string) (*Relation, error) {
	if strings.HasSuffix(path, ".csv") {
		return db.LoadCSVFile(path, name, CSVOptions{Dict: db.Dict()})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := relation.ReadTSV(f, name)
	if err != nil {
		return nil, err
	}
	if err := db.Register(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Dict returns the engine's string dictionary (shared with LoadCSV
// callers that intern through it).
func (db *DB) Dict() *Dict {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.Dict()
}

// Relation returns the named relation's current effective tuple set
// (base with the delta log merged in; materialized lazily, at most
// once per update epoch).
func (db *DB) Relation(name string) (*Relation, bool) {
	db.mu.RLock()
	v, ok := db.versions[name]
	db.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return v.Effective(), true
}

// Names returns the registered relation names in sorted order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data.Names()
}

// SetTrieCacheLimit replaces the DB-owned trie store's byte budget and
// returns the previous one; it does not touch the process-global store
// one-shot Execute uses.
func (db *DB) SetTrieCacheLimit(bytes int64) int64 { return db.store.SetLimit(bytes) }

// DBStats is a point-in-time snapshot of the engine's shared state.
//
//wcojlint:exhaustive
type DBStats struct {
	// Relations and Tuples size the registered data (Tuples counts the
	// effective cardinality: base − deleted + inserted).
	Relations, Tuples int
	// TrieEntries / TrieBytes / TrieLimit describe the owned trie
	// store; TrieHits / TrieMisses are its lifetime counters.
	TrieEntries          int
	TrieBytes, TrieLimit int64
	TrieHits, TrieMisses uint64
	// PlansCached is the resident plan-cache size; PlanHits and
	// PlanMisses count Prepare calls served from / missing the cache.
	PlansCached          int
	PlanHits, PlanMisses uint64
	// Epoch is the current update epoch (published batches that changed
	// something); DeltaTuples is the current delta depth summed over
	// relations (logged inserts + tombstones awaiting compaction);
	// MaxEpoch is the largest per-relation snapshot epoch.
	Epoch       uint64
	DeltaTuples int
	MaxEpoch    uint64
	// Batches / Inserted / Deleted / InsertNoops / DeleteNoops are
	// lifetime update counters: no-ops are updates with no effect
	// (duplicate insert, absent delete), counted exactly, never folded
	// into the delta. Compactions counts delta-into-base folds.
	Batches                  uint64
	Inserted, Deleted        uint64
	InsertNoops, DeleteNoops uint64
	Compactions              uint64
	// MaterializedViews counts the registered maintained queries
	// (DB.Materialize).
	MaterializedViews int
}

// Stats snapshots the engine counters.
func (db *DB) Stats() DBStats {
	db.mu.RLock()
	rels := len(db.versions)
	nviews := len(db.views)
	tuples, deltaTuples := 0, 0
	var maxEpoch uint64
	for _, v := range db.versions {
		tuples += v.Len()
		deltaTuples += v.DeltaLen()
		if v.Epoch > maxEpoch {
			maxEpoch = v.Epoch
		}
	}
	db.mu.RUnlock()
	hits, misses, entries := db.store.Stats()
	bytes, limit, _ := db.store.Usage()
	db.plansMu.Lock()
	cached := len(db.plans)
	db.plansMu.Unlock()
	return DBStats{
		Relations: rels, Tuples: tuples,
		TrieEntries: entries, TrieBytes: bytes, TrieLimit: limit,
		TrieHits: hits, TrieMisses: misses,
		PlansCached: cached,
		PlanHits:    db.planHits.Load(), PlanMisses: db.planMisses.Load(),
		Epoch:       db.updEpoch.Load(),
		DeltaTuples: deltaTuples,
		MaxEpoch:    maxEpoch,
		Batches:     db.batches.Load(),
		Inserted:    db.inserts.Load(), Deleted: db.deletes.Load(),
		InsertNoops: db.insertNoops.Load(), DeleteNoops: db.deleteNoops.Load(),
		Compactions: db.compactions.Load(),

		MaterializedViews: nviews,
	}
}

// planKey fingerprints (query shape, options) for the plan cache.
// Parallelism is part of the key: it is captured by the prepared query
// (execution calls take only a context), so two parallelism settings
// are two prepared entries sharing tries through the store. The
// constraint set is fingerprinted too — AlgoBacktracking runs under
// it, so two constraint sets must never share a cached plan. Slices
// are rendered with sliceKey so nil (defaulted) and empty (invalid,
// must still reach validation) options never collide, and no slice
// element can forge a separator.
func planKey(src string, opts Options) string {
	return fmt.Sprintf("%s|algo=%d|planner=%d|order=%s|project=%s|par=%d|push=%t|dc=%#v",
		src, opts.Algorithm, opts.Planner,
		sliceKey(opts.Order), sliceKey(opts.Project), opts.Parallelism,
		!opts.DisablePushdown, opts.Constraints)
}

// sliceKey renders an options slice for the cache key: nil is distinct
// from empty, and %q escapes every element (Constraints use %#v above
// for the same reason — %v space-joins nested slices ambiguously).
func sliceKey(s []string) string {
	if s == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%q", s)
}

// Prepare parses, binds and validates the query against the
// registered relations and returns a PreparedQuery that re-executes
// it concurrently. Each execution mode's plan (variable order —
// including any cost-based LP work — tries, and the aggregate
// classification) is resolved once, on the mode's first call; Warm
// forces the enumeration plan eagerly. Prepared plans are cached by
// (query shape, options): preparing the same query again is a map
// hit, and the cached instance accumulates call stats across all
// holders. Register invalidates the cache; Insert/Delete/Apply do
// not — prepared queries follow updates by re-versioning only the
// touched relation's tries at their next execution.
func (db *DB) Prepare(src string, opts Options) (*PreparedQuery, error) {
	// Per-call cancellation of a prepared query comes from the ctx
	// argument of each execution method; a one-shot Options.Context
	// must not be pinned by a long-lived plan cache entry (nor split
	// the cache key).
	opts.Context = nil
	parsed, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	canonical := parsed.String()
	key := planKey(canonical, opts)
	db.plansMu.Lock()
	if e, ok := db.plans[key]; ok {
		db.planClock++
		e.stamp = db.planClock
		db.plansMu.Unlock()
		db.planHits.Add(1)
		return e.pq, nil
	}
	gen := db.gen
	db.plansMu.Unlock()
	db.planMisses.Add(1)

	db.mu.RLock()
	q, err := parsed.Bind(db.data)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if err := opts.validatePlanner(); err != nil {
		return nil, err
	}
	if err := opts.validateProject(q); err != nil {
		return nil, err
	}
	// Validate the planner/order combination now (cheap — no planning
	// work), so Prepare still rejects what eager plan building used to:
	// a missing explicit order, a conflicting Planner+Order pair, or an
	// explicit order that is not a permutation of the query variables.
	popt, err := opts.plannerOptions()
	if err != nil {
		return nil, err
	}
	if wcojAlgorithm(opts.Algorithm) && popt.Policy == planner.Explicit {
		if err := core.CheckOrder(q, popt.Explicit); err != nil {
			return nil, err
		}
	}
	// Plans are built lazily, once per mode (enumerate/count/exists),
	// on first use: a query served only through CountFast never pays
	// for the enumeration plan's order resolution or tries. Warm
	// forces the enumeration build for startup warm-up.
	pq := &PreparedQuery{db: db, src: canonical, opts: opts}
	pq.state.Store(db.newState(pq, q, nil))
	db.plansMu.Lock()
	switch won, ok := db.plans[key]; {
	case ok:
		pq = won.pq // a concurrent Prepare won the race; share its plans
	case db.gen != gen:
		// A Register slipped in after this Prepare bound its relations:
		// the plan is valid for the data it saw, but caching it would
		// serve stale data to future Prepare calls. Hand it back uncached.
	case db.planLimit > 0:
		db.planClock++
		db.plans[key] = &planCacheEntry{pq: pq, stamp: db.planClock}
		db.evictPlansLocked()
	}
	db.plansMu.Unlock()
	return pq, nil
}

// Bind parses the query and binds its atoms against the registered
// relations' current snapshots without preparing a plan — what
// Explain-style tooling needs (a prepared plan would eagerly build
// execution state the explanation never runs).
func (db *DB) Bind(src string) (*Query, error) {
	parsed, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	q, err := parsed.Bind(db.data)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	vers := db.atomVersions(q)
	db.mu.RUnlock()
	rebindEffective(q, vers)
	return q, nil
}

// atomVersions snapshots the current version of every relation the
// query touches.
//
//wcojlint:locked callers hold db.mu (read or write)
func (db *DB) atomVersions(q *Query) map[string]*delta.Version {
	vers := make(map[string]*delta.Version, len(q.Atoms))
	for _, a := range q.Atoms {
		if v, ok := db.versions[a.Name]; ok {
			vers[a.Name] = v
		}
	}
	return vers
}

// rebindEffective points each atom at its snapshot's effective
// relation (materializing lazily — outside any DB lock).
func rebindEffective(q *Query, vers map[string]*delta.Version) {
	for i := range q.Atoms {
		if v := vers[q.Atoms[i].Name]; v != nil {
			q.Atoms[i].Rel = v.Effective()
		}
	}
}

// Warm prepares each query and eagerly builds its enumeration plan
// (order resolution and tries), returning the first error. Use it at
// startup so serving traffic never pays a cold plan.
func (db *DB) Warm(srcs ...string) error {
	for _, src := range srcs {
		pq, err := db.Prepare(src, Options{})
		if err != nil {
			return err
		}
		if wcojAlgorithm(pq.opts.Algorithm) {
			if _, _, err := pq.currentState().enumPlan(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Query is Prepare + Execute in one call; repeated calls hit the plan
// cache, so ad-hoc callers still amortize planning.
func (db *DB) Query(ctx context.Context, src string, opts Options) (*Relation, *Stats, error) {
	pq, err := db.Prepare(src, opts)
	if err != nil {
		return nil, nil, err
	}
	return pq.Execute(ctx)
}

// wcojAlgorithm reports whether the algorithm runs through the
// trie-based plan machinery prepared queries cache.
func wcojAlgorithm(a Algorithm) bool {
	return a == AlgoGenericJoin || a == AlgoLeapfrog
}

// PreparedQuery is a compiled query: parse, bind, variable order, agg
// classification and tries are resolved once, then Execute / Count /
// Exists re-run the search any number of times, from any number of
// goroutines. Results are identical to the equivalent one-shot calls.
// Per-call Stats are returned by each call; cumulative counters are
// read by Stats.
//
// A prepared query survives updates to its relations: each execution
// resolves the DB's current snapshot (one atomic epoch comparison on
// the fast path), and on the first execution after a batch only the
// touched relation's per-binding tries are re-versioned — by merging
// the delta log into the cached base trie — while the plan skeleton
// (variable order, classification) is reused. Concurrent executions
// each keep the snapshot they started with, so a reader never sees a
// half-applied batch.
//
// For AlgoBacktracking and the binary-join baselines — which have no
// trie plan to cache — the prepared query falls back to the one-shot
// path per call (parse and bind still amortized); those paths have no
// cancellation plumbing, so ctx is checked only before the call
// starts, not during it.
type PreparedQuery struct {
	db   *DB
	src  string
	opts Options

	// state is the current resolved snapshot: the bound query, the
	// versioned trie source and the lazily-built per-mode plans.
	// Executions load it once and use it throughout (snapshot
	// isolation); updates are observed by swapping in a successor.
	state atomic.Pointer[pqState]

	calls  atomic.Int64
	tuples atomic.Int64
	nanos  atomic.Int64
}

// modePlan is one execution mode's resolved plan.
type modePlan struct {
	p   *core.Plan
	cls *agg.Classification
	err error
}

// pqState is one epoch-consistent resolution of a prepared query:
// atoms bound to the snapshot's effective relations, a trie source
// over the same snapshot, and the per-mode plans (built lazily, at
// most once per state; inherited plans from the previous state are
// re-versioned instead of re-planned).
type pqState struct {
	pq    *PreparedQuery
	epoch uint64
	q     *Query
	src   core.TrieSource

	// inh* carry the previous state's built plans (skeleton only; the
	// tries inside are stale and re-resolved by core.RefreshPlan).
	inhEnum, inhCount, inhExists *modePlan

	enumOnce, countOnce, existsOnce sync.Once
	enum, count, exists             modePlan
	enumDone, countDone, existsDone atomic.Bool
}

// newState resolves a fresh snapshot state for pq. q supplies the
// binding shape (names and variables); atom relations are re-pointed
// at the snapshot's effective views. prev, when non-nil, donates its
// built plans for re-versioning.
func (db *DB) newState(pq *PreparedQuery, q *Query, prev *pqState) *pqState {
	db.mu.RLock()
	epoch := db.updEpoch.Load()
	vers := db.atomVersions(q)
	db.mu.RUnlock()
	q2 := &Query{Vars: q.Vars, Atoms: append([]Atom(nil), q.Atoms...)}
	rebindEffective(q2, vers)
	s := &pqState{
		pq:    pq,
		epoch: epoch,
		q:     q2,
		src:   dbTrieSource{store: db.store, vers: vers},
	}
	// Inherit plans only while the binding shape is unchanged (a
	// Register that swapped in a different-arity relation invalidates
	// the skeleton; the fresh build below then reports the real error).
	sameShape := true
	for _, a := range q2.Atoms {
		if a.Rel.Arity() != len(a.Vars) {
			sameShape = false
		}
	}
	if prev != nil && sameShape {
		s.inhEnum = prev.donate(&prev.enumDone, &prev.enum)
		s.inhCount = prev.donate(&prev.countDone, &prev.count)
		s.inhExists = prev.donate(&prev.existsDone, &prev.exists)
	}
	return s
}

// donate hands a built mode plan to a successor state; nil when the
// mode was never built (or is still building) — the successor then
// builds from scratch on demand. The done flag's atomic store/load
// pair orders the plan fields. The plan is donated BY VALUE: handing
// out &s.enum would pin the whole donor state (and, through its own
// inh fields, every ancestor state) for as long as the successor
// lives — an unbounded chain under a steady update stream. The copy
// retains only the donor's plan and tries, for exactly one
// generation, until the successor's once-build re-versions them.
func (s *pqState) donate(done *atomic.Bool, mp *modePlan) *modePlan {
	if done.Load() {
		c := *mp
		return &c
	}
	return nil
}

// refreshInherited re-versions an inherited plan's tries against this
// state's snapshot. nil means no (usable) donation: build fresh.
// Donated errors are dropped — the fresh build recomputes the same
// deterministic error, and data-dependent failures get a clean retry.
func (s *pqState) refreshInherited(inh *modePlan) *modePlan {
	if inh == nil || inh.err != nil {
		return nil
	}
	np, err := core.RefreshPlan(inh.p, s.q, s.src)
	if err != nil {
		return nil
	}
	return &modePlan{p: np, cls: inh.cls}
}

// currentState returns the prepared query's state for the DB's
// current update epoch, refreshing (and publishing the refresh) when
// a batch has landed since the state was resolved.
func (pq *PreparedQuery) currentState() *pqState {
	s := pq.state.Load()
	if s.epoch == pq.db.updEpoch.Load() {
		return s
	}
	ns := pq.db.newState(pq, s.q, s)
	for {
		if pq.state.CompareAndSwap(s, ns) {
			return ns
		}
		cur := pq.state.Load()
		if cur.epoch >= ns.epoch {
			return cur // a concurrent refresh won with a same-or-newer snapshot
		}
		s = cur
	}
}

// enumPlan builds (once per state) the enumeration plan: plain when no
// projection is requested, a sunk projected plan otherwise.
func (s *pqState) enumPlan() (*core.Plan, *agg.Classification, error) {
	s.enumOnce.Do(func() {
		defer s.enumDone.Store(true)
		mp := s.refreshInherited(s.inhEnum)
		s.inhEnum = nil // drop the donor plan; it pinned old tries
		if mp != nil {
			s.enum = *mp
			return
		}
		opts := s.pq.opts
		if opts.Project != nil {
			spec := agg.Spec{Mode: agg.ModeEnumerate, Project: opts.Project}
			pol, err := opts.orderPolicyFor(&spec)
			if err != nil {
				s.enum.err = err
				return
			}
			s.enum.p, s.enum.cls, s.enum.err = core.AggPlanSrc(s.src, s.q, pol, spec)
			return
		}
		pol, err := opts.orderPolicy()
		if err != nil {
			s.enum.err = err
			return
		}
		s.enum.p, s.enum.err = core.BuildPlanSrc(s.src, s.q, pol)
	})
	return s.enum.p, s.enum.cls, s.enum.err
}

// countPlan builds (once per state) the CountFast plan and
// classification.
func (s *pqState) countPlan() (*core.Plan, *agg.Classification, error) {
	s.countOnce.Do(func() {
		defer s.countDone.Store(true)
		mp := s.refreshInherited(s.inhCount)
		s.inhCount = nil // drop the donor plan; it pinned old tries
		if mp != nil {
			s.count = *mp
			return
		}
		opts := s.pq.opts
		spec := agg.Spec{Mode: agg.ModeCount, Project: opts.Project}
		pol, err := opts.orderPolicyFor(&spec)
		if err != nil {
			s.count.err = err
			return
		}
		s.count.p, s.count.cls, s.count.err = core.AggPlanSrc(s.src, s.q, pol, spec)
	})
	return s.count.p, s.count.cls, s.count.err
}

// existsPlan builds (once per state) the Exists plan and
// classification.
func (s *pqState) existsPlan() (*core.Plan, *agg.Classification, error) {
	s.existsOnce.Do(func() {
		defer s.existsDone.Store(true)
		mp := s.refreshInherited(s.inhExists)
		s.inhExists = nil // drop the donor plan; it pinned old tries
		if mp != nil {
			s.exists = *mp
			return
		}
		opts := s.pq.opts
		spec := agg.Spec{Mode: agg.ModeExists}
		pol, err := opts.orderPolicyFor(&spec)
		if err != nil {
			s.exists.err = err
			return
		}
		s.exists.p, s.exists.cls, s.exists.err = core.AggPlanSrc(s.src, s.q, pol, spec)
	})
	return s.exists.p, s.exists.cls, s.exists.err
}

// Source returns the canonical text of the prepared query.
func (pq *PreparedQuery) Source() string { return pq.src }

// Query returns the query bound to the current snapshot.
func (pq *PreparedQuery) Query() *Query { return pq.currentState().q }

// Options returns the options the query was prepared with.
func (pq *PreparedQuery) Options() Options { return pq.opts }

// Order returns the resolved global variable order of the primary
// plan (nil for the non-WCOJ algorithms).
func (pq *PreparedQuery) Order() []string {
	if !wcojAlgorithm(pq.opts.Algorithm) {
		return nil
	}
	p, _, err := pq.currentState().enumPlan()
	if err != nil {
		return nil
	}
	return append([]string(nil), p.Order...)
}

// Explain returns the planning record of the prepared plan against
// the current snapshot; see Explain (package level) for its contents.
func (pq *PreparedQuery) Explain() (*PlanExplanation, error) {
	return Explain(pq.currentState().q, pq.opts)
}

// record folds one call into the cumulative call/time counters;
// result cardinalities are added to pq.tuples by each entry point once
// it knows them.
func (pq *PreparedQuery) record(start time.Time) {
	pq.calls.Add(1)
	pq.nanos.Add(int64(time.Since(start)))
}

// PreparedStats are cumulative counters across every call of a
// prepared query (all goroutines).
//
//wcojlint:exhaustive
type PreparedStats struct {
	// Calls counts completed executions (including failed ones).
	Calls int64
	// Tuples totals the result cardinalities.
	Tuples int64
	// Duration totals wall-clock execution time.
	Duration time.Duration
}

// Stats snapshots the cumulative per-query counters.
func (pq *PreparedQuery) Stats() PreparedStats {
	return PreparedStats{
		Calls:    pq.calls.Load(),
		Tuples:   pq.tuples.Load(),
		Duration: time.Duration(pq.nanos.Load()),
	}
}

// Execute runs the prepared plan against the current snapshot and
// materializes the result (the distinct projected tuples when prepared
// with Options.Project). Cancelling ctx stops the search workers
// promptly and returns ctx.Err().
func (pq *PreparedQuery) Execute(ctx context.Context) (*Relation, *Stats, error) {
	defer pq.record(time.Now())
	s := pq.currentState()
	if !wcojAlgorithm(pq.opts.Algorithm) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		out, stats, err := Execute(s.q, pq.opts)
		if err == nil {
			pq.tuples.Add(int64(out.Len()))
		}
		return out, stats, err
	}
	attrs := s.q.Vars
	if pq.opts.Project != nil {
		attrs = pq.opts.Project
	}
	stats := &Stats{}
	out := relation.NewBuilder(s.q.OutputName(), attrs...)
	err := pq.visit(ctx, s, stats, func(t Tuple) error { return out.Add(t...) })
	if err != nil {
		return nil, nil, err
	}
	rel := out.Build()
	stats.Output = rel.Len()
	pq.tuples.Add(int64(rel.Len()))
	return rel, stats, nil
}

// ExecuteFunc streams the prepared query's result to emit under the
// one-shot ExecuteFunc contract (canonical order, reused Tuple).
func (pq *PreparedQuery) ExecuteFunc(ctx context.Context, emit func(Tuple) error) (*Stats, error) {
	defer pq.record(time.Now())
	s := pq.currentState()
	if !wcojAlgorithm(pq.opts.Algorithm) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats, err := ExecuteFunc(s.q, pq.opts, emit)
		if err == nil {
			pq.tuples.Add(int64(stats.Output))
		}
		return stats, err
	}
	stats := &Stats{}
	n := 0
	err := pq.visit(ctx, s, stats, func(t Tuple) error { n++; return emit(t) })
	if err != nil {
		return nil, err
	}
	stats.Output = n
	pq.tuples.Add(int64(n))
	return stats, nil
}

// visit drives the prepared enumeration (plain or projected) on the
// engine the query was prepared for, against one snapshot state.
func (pq *PreparedQuery) visit(ctx context.Context, s *pqState, stats *Stats, emit func(Tuple) error) error {
	p, cls, err := s.enumPlan()
	if err != nil {
		return err
	}
	workers := pq.opts.workers()
	switch {
	case cls != nil && pq.opts.Algorithm == AlgoLeapfrog:
		return lftj.ProjectVisitPlan(ctx, p, cls, workers, stats, emit)
	case cls != nil:
		return core.GenericJoinProjectVisitPlan(ctx, p, cls, workers, stats, emit)
	case pq.opts.Algorithm == AlgoLeapfrog:
		return lftj.PlanVisit(ctx, p, workers, stats, emit)
	default:
		return core.GenericJoinPlanVisit(ctx, p, workers, stats, emit)
	}
}

// Count returns the prepared query's output cardinality (distinct
// projected tuples when prepared with Options.Project). Like the
// one-shot Count it runs the aggregate-aware pushdown plan by default,
// enumerating every result tuple only when the query was prepared
// with Options.DisablePushdown.
func (pq *PreparedQuery) Count(ctx context.Context) (int, *Stats, error) {
	if pq.opts.Project != nil || (!pq.opts.DisablePushdown && wcojAlgorithm(pq.opts.Algorithm)) {
		return pq.countPushdown(ctx)
	}
	defer pq.record(time.Now())
	s := pq.currentState()
	if !wcojAlgorithm(pq.opts.Algorithm) {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		n, stats, err := Count(s.q, pq.opts)
		if err == nil {
			pq.tuples.Add(int64(n))
		}
		return n, stats, err
	}
	p, _, err := s.enumPlan()
	if err != nil {
		return 0, nil, err
	}
	var n int
	var stats *Stats
	if pq.opts.Algorithm == AlgoLeapfrog {
		n, stats, err = lftj.PlanCount(ctx, p, pq.opts.workers())
	} else {
		n, stats, err = core.GenericJoinPlanCount(ctx, p, pq.opts.workers())
	}
	if err != nil {
		return 0, nil, err
	}
	pq.tuples.Add(int64(n))
	return n, stats, nil
}

// CountFast runs the prepared aggregate-aware count.
//
// Deprecated: Count runs the aggregate pushdown automatically (unless
// the query was prepared with Options.DisablePushdown); call Count
// instead.
func (pq *PreparedQuery) CountFast(ctx context.Context) (int, *Stats, error) {
	return pq.countPushdown(ctx)
}

// countPushdown runs the prepared aggregate-aware count plan — the
// pushdown path shared by Count and the deprecated CountFast alias.
func (pq *PreparedQuery) countPushdown(ctx context.Context) (int, *Stats, error) {
	defer pq.record(time.Now())
	s := pq.currentState()
	if !wcojAlgorithm(pq.opts.Algorithm) {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		opts := pq.opts
		opts.DisablePushdown = false
		n, stats, err := Count(s.q, opts)
		if err == nil {
			pq.tuples.Add(int64(n))
		}
		return n, stats, err
	}
	p, cls, err := s.countPlan()
	if err != nil {
		return 0, nil, err
	}
	var n int64
	var stats *Stats
	if pq.opts.Algorithm == AlgoLeapfrog {
		n, stats, err = lftj.AggPlan(ctx, p, cls, pq.opts.workers())
	} else {
		n, stats, err = core.GenericJoinAggPlan(ctx, p, cls, pq.opts.workers())
	}
	if err != nil {
		return 0, nil, err
	}
	pq.tuples.Add(n)
	return int(n), stats, nil
}

// Exists reports whether the prepared query has any result,
// short-circuiting on the first witness across all workers.
func (pq *PreparedQuery) Exists(ctx context.Context) (bool, *Stats, error) {
	defer pq.record(time.Now())
	s := pq.currentState()
	if !wcojAlgorithm(pq.opts.Algorithm) {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
		return Exists(s.q, pq.opts)
	}
	p, cls, err := s.existsPlan()
	if err != nil {
		return false, nil, err
	}
	var n int64
	var stats *Stats
	if pq.opts.Algorithm == AlgoLeapfrog {
		n, stats, err = lftj.AggPlan(ctx, p, cls, pq.opts.workers())
	} else {
		n, stats, err = core.GenericJoinAggPlan(ctx, p, cls, pq.opts.workers())
	}
	if err != nil {
		return false, nil, err
	}
	if n != 0 {
		pq.tuples.Add(1)
	}
	return n != 0, stats, nil
}
