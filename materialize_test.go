package wcoj

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"wcoj/internal/dataset"
)

// matRandomBatch builds a batch of n random edge inserts/deletes over a
// small domain, so deletes regularly hit live tuples and batches carry
// no-ops, churn and resurrections.
func matRandomBatch(r *rand.Rand, rel string, n, domain int) *Batch {
	b := NewBatch()
	for i := 0; i < n; i++ {
		t := Tuple{Value(r.Intn(domain)), Value(r.Intn(domain))}
		if r.Intn(2) == 0 {
			b.Insert(rel, t)
		} else {
			b.Delete(rel, t)
		}
	}
	return b
}

// matViewSpec pairs one maintained view with the checker that compares
// it against a from-scratch Prepare of the same query.
type matViewSpec struct {
	name  string
	query string
	opts  MaterializeOptions
}

// checkAgainstRecompute asserts the maintained value is byte-identical
// to a from-scratch evaluation of the same query at the current
// snapshot, and that its epoch matches the DB's.
func checkAgainstRecompute(t *testing.T, db *DB, mq *MaterializedQuery, spec matViewSpec) {
	t.Helper()
	ctx := context.Background()
	res := mq.Result()
	if res.Err != nil {
		t.Fatalf("%s: maintained result stale: %v", spec.name, res.Err)
	}
	if got, want := res.Epoch, db.Stats().Epoch; got != want {
		t.Fatalf("%s: result epoch %d, DB epoch %d", spec.name, got, want)
	}
	opts := Options{Algorithm: spec.opts.Algorithm, Parallelism: spec.opts.Parallelism, Project: spec.opts.Project}
	pq, err := db.Prepare(spec.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	switch spec.opts.Mode {
	case MaterializeCount, MaterializeExists:
		want, _, err := pq.Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != int64(want) {
			t.Fatalf("%s: maintained count %d, recompute %d", spec.name, res.Count, want)
		}
		if spec.opts.Mode == MaterializeExists && mq.Exists() != (want != 0) {
			t.Fatalf("%s: maintained exists %t, recompute %t", spec.name, mq.Exists(), want != 0)
		}
	case MaterializeRows:
		want, _, err := pq.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows == nil || !res.Rows.Equal(want) {
			got := -1
			if res.Rows != nil {
				got = res.Rows.Len()
			}
			t.Fatalf("%s: maintained rows differ from recompute (%d vs %d tuples)", spec.name, got, want.Len())
		}
		if res.Count != int64(want.Len()) {
			t.Fatalf("%s: maintained count %d, rows %d", spec.name, res.Count, want.Len())
		}
	}
}

// TestMaterializeEquivalence drives a randomized insert/delete stream
// through a DB carrying one maintained view per (mode, engine,
// parallelism, projection) combination and asserts, after every batch,
// that each maintained value is byte-identical to a from-scratch
// evaluation at that snapshot.
func TestMaterializeEquivalence(t *testing.T) {
	const domain = 30
	specs := []matViewSpec{
		{name: "count-gj", query: "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			opts: MaterializeOptions{Mode: MaterializeCount}},
		{name: "count-lftj-par", query: "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			opts: MaterializeOptions{Mode: MaterializeCount, Algorithm: AlgoLeapfrog, Parallelism: 4}},
		{name: "count-project", query: "P(A,B,C) :- E(A,B), F(B,C)",
			opts: MaterializeOptions{Mode: MaterializeCount, Project: []string{"A", "C"}}},
		{name: "exists", query: "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			opts: MaterializeOptions{Mode: MaterializeExists, Parallelism: 2}},
		{name: "rows", query: "P(A,B,C) :- E(A,B), F(B,C)",
			opts: MaterializeOptions{Mode: MaterializeRows}},
		{name: "rows-project-lftj", query: "P(A,B,C) :- E(A,B), F(B,C)",
			opts: MaterializeOptions{Mode: MaterializeRows, Algorithm: AlgoLeapfrog, Project: []string{"A", "C"}}},
	}

	db := NewDB()
	if err := db.Register(dataset.RandomGraph(domain, 120, 11)); err != nil {
		t.Fatal(err)
	}
	f := dataset.RandomGraph(domain, 100, 12)
	fr, err := f.Rename("F", f.Attrs()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(fr); err != nil {
		t.Fatal(err)
	}

	views := make([]*MaterializedQuery, len(specs))
	for i, spec := range specs {
		mq, err := db.Materialize(spec.query, spec.opts)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		views[i] = mq
		checkAgainstRecompute(t, db, mq, spec)
	}
	if got := db.Stats().MaterializedViews; got != len(specs) {
		t.Fatalf("MaterializedViews = %d, want %d", got, len(specs))
	}

	r := rand.New(rand.NewSource(42))
	for step := 0; step < 60; step++ {
		b := NewBatch()
		// Alternate between single-relation and cross-relation batches so
		// the differential exercises both the untouched-occurrence skip
		// and the post/pre split across relations.
		switch step % 3 {
		case 0:
			b = matRandomBatch(r, "E", 1+r.Intn(20), domain)
		case 1:
			b = matRandomBatch(r, "F", 1+r.Intn(20), domain)
		default:
			for _, op := range matRandomBatch(r, "E", 1+r.Intn(10), domain).ops["E"] {
				if op.Del {
					b.Delete("E", op.T)
				} else {
					b.Insert("E", op.T)
				}
			}
			for _, op := range matRandomBatch(r, "F", 1+r.Intn(10), domain).ops["F"] {
				if op.Del {
					b.Delete("F", op.T)
				} else {
					b.Insert("F", op.T)
				}
			}
		}
		if _, err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
		for i, spec := range specs {
			checkAgainstRecompute(t, db, views[i], spec)
		}
	}
}

// TestMaterializeUntouchedRelation checks that a batch over one
// relation advances a view over another by the cheap epoch-copy path,
// with the value unchanged.
func TestMaterializeUntouchedRelation(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(20, 80, 3)); err != nil {
		t.Fatal(err)
	}
	other := NewRelationBuilder("G", "X", "Y")
	if err := other.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(other.Build()); err != nil {
		t.Fatal(err)
	}
	mq, err := db.Materialize("T(A,B,C) :- E(A,B), E(B,C), E(C,A)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := mq.Result()
	if _, err := db.Insert("G", Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}
	after := mq.Result()
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d after unrelated batch, want %d", after.Epoch, before.Epoch+1)
	}
	if after.Count != before.Count || after.Err != nil {
		t.Fatalf("count changed across unrelated batch: %+v vs %+v", after, before)
	}
}

// TestMaterializeRegisterRecompute checks that Register — which
// replaces a relation wholesale, with no batch delta to fold —
// recomputes maintained views before returning, and that a Register
// that breaks a view (arity change) marks it stale-with-error until a
// later Register heals it.
func TestMaterializeRegisterRecompute(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(20, 80, 7)); err != nil {
		t.Fatal(err)
	}
	mq, err := db.Materialize("T(A,B,C) :- E(A,B), E(B,C), E(C,A)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Replace E with a known 3-cycle: exactly one triangle, counted 3
	// times (once per rotation of the cycle through the variable roles).
	cyc := NewRelationBuilder("E", "src", "dst")
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 1}} {
		if err := cyc.Add(Value(e[0]), Value(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register(cyc.Build()); err != nil {
		t.Fatal(err)
	}
	if res := mq.Result(); res.Err != nil || res.Count != 3 {
		t.Fatalf("after Register: %+v, want count 3", res)
	}

	// Replace E with the wrong arity: the view cannot be recomputed and
	// must go stale (loudly), keeping the last good count.
	bad := NewRelationBuilder("E", "x", "y", "z")
	if err := bad.Add(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(bad.Build()); err != nil {
		t.Fatal(err)
	}
	if res := mq.Result(); res.Err == nil || res.Count != 3 {
		t.Fatalf("after arity-breaking Register: %+v, want stale with count 3", res)
	}

	// Healing Register: the view recomputes and drops the error.
	empty := NewRelationBuilder("E", "src", "dst")
	if err := db.Register(empty.Build()); err != nil {
		t.Fatal(err)
	}
	if res := mq.Result(); res.Err != nil || res.Count != 0 {
		t.Fatalf("after healing Register: %+v, want count 0", res)
	}

	// And the next batch maintains differentially again.
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 1}} {
		if _, err := db.Insert("E", Tuple{Value(e[0]), Value(e[1])}); err != nil {
			t.Fatal(err)
		}
	}
	if res := mq.Result(); res.Err != nil || res.Count != 3 {
		t.Fatalf("after re-inserting the cycle: %+v, want count 3", res)
	}
}

// TestMaterializeClose checks Close stops maintenance, keeps the last
// value readable, and unregisters the view.
func TestMaterializeClose(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(15, 50, 9)); err != nil {
		t.Fatal(err)
	}
	mq, err := db.Materialize("P(A,B,C) :- E(A,B), E(B,C)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := mq.Result()
	if err := mq.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mq.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, ok := db.Materialized(mq.ID()); ok {
		t.Fatal("closed view still registered")
	}
	if got := db.Stats().MaterializedViews; got != 0 {
		t.Fatalf("MaterializedViews = %d after Close", got)
	}
	if _, err := db.Insert("E", Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := mq.Result(); got.Epoch != last.Epoch || got.Count != last.Count {
		t.Fatalf("closed view moved: %+v vs %+v", got, last)
	}
}

// TestMaterializeValidation covers the option and state errors.
func TestMaterializeValidation(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(10, 30, 1)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		query string
		opts  MaterializeOptions
		want  string
	}{
		{"bad-algo", "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			MaterializeOptions{Algorithm: AlgoBacktracking}, "not supported"},
		{"bad-mode", "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			MaterializeOptions{Mode: MaterializeMode(9)}, "unknown mode"},
		{"exists-project", "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			MaterializeOptions{Mode: MaterializeExists, Project: []string{"A"}}, "EXISTS"},
		{"bad-project", "T(A,B,C) :- E(A,B), E(B,C), E(C,A)",
			MaterializeOptions{Project: []string{"Z"}}, "Z"},
		{"no-relation", "Q(A,B) :- Nope(A,B)", MaterializeOptions{}, "Nope"},
		{"parse", "nope(", MaterializeOptions{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := db.Materialize(tc.query, tc.opts)
			if err == nil {
				t.Fatalf("Materialize(%q, %+v) succeeded", tc.query, tc.opts)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := ParseMaterializeMode("rows"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMaterializeMode("nope"); err == nil {
		t.Fatal("ParseMaterializeMode accepted garbage")
	}
	for _, m := range []MaterializeMode{MaterializeCount, MaterializeExists, MaterializeRows} {
		back, err := ParseMaterializeMode(m.String())
		if err != nil || back != m {
			t.Fatalf("mode %v does not round-trip: %v, %v", m, back, err)
		}
	}
}

// TestMaterializeConcurrentReaders hammers a maintained view with
// concurrent readers while a writer applies batches — the race
// detector's view of the publish path — and asserts every observed
// value is one the writer actually published for that epoch.
func TestMaterializeConcurrentReaders(t *testing.T) {
	const domain = 20
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(domain, 60, 21)); err != nil {
		t.Fatal(err)
	}
	mq, err := db.Materialize("T(A,B,C) :- E(A,B), E(B,C), E(C,A)", MaterializeOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	// The writer records the count it published at each epoch; readers
	// check any (epoch, count) pair they observe against that record.
	var mu sync.Mutex
	published := map[uint64]int64{db.Stats().Epoch: mq.Count()}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := mq.Result()
				mu.Lock()
				want, ok := published[res.Epoch]
				mu.Unlock()
				if ok && want != res.Count {
					t.Errorf("epoch %d: read count %d, writer published %d", res.Epoch, res.Count, want)
					return
				}
			}
		}()
	}
	r := rand.New(rand.NewSource(7))
	for step := 0; step < 40; step++ {
		if _, err := db.Apply(matRandomBatch(r, "E", 1+r.Intn(8), domain)); err != nil {
			t.Fatal(err)
		}
		res := mq.Result()
		mu.Lock()
		published[res.Epoch] = res.Count
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}

// TestMaterializeWALRecovery checks the durability story: views
// survive a close/reopen (including through a log rotation), closed
// views stay gone, recovered views keep their ids and values, resume
// differential maintenance, and new views get fresh ids.
func TestMaterializeWALRecovery(t *testing.T) {
	const domain = 25
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(domain, 100, 31)); err != nil {
		t.Fatal(err)
	}
	keep, err := db.Materialize("T(A,B,C) :- E(A,B), E(B,C), E(C,A)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Materialize("P(A,B,C) :- E(A,B), E(B,C)", MaterializeOptions{Mode: MaterializeRows, Project: []string{"A", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	gone, err := db.Materialize("X(A,B) :- E(A,B)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		if _, err := db.Apply(matRandomBatch(r, "E", 1+r.Intn(10), domain)); err != nil {
			t.Fatal(err)
		}
	}
	// Force a snapshot + rotation: the fresh generation must re-log the
	// live registrations. Closing a view afterwards logs the retirement
	// into the new generation, which must keep its id off the reissue
	// floor.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := gone.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Apply(matRandomBatch(r, "E", 1+r.Intn(10), domain)); err != nil {
			t.Fatal(err)
		}
	}
	wantKeep, wantRows := keep.Result(), rows.Result()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Materialized(gone.ID()); ok {
		t.Fatal("closed view resurrected by recovery")
	}
	rk, ok := re.Materialized(keep.ID())
	if !ok {
		t.Fatalf("view %s not re-armed", keep.ID())
	}
	rr, ok := re.Materialized(rows.ID())
	if !ok {
		t.Fatalf("view %s not re-armed", rows.ID())
	}
	if got := rk.Result(); got.Err != nil || got.Count != wantKeep.Count || got.Epoch != wantKeep.Epoch {
		t.Fatalf("recovered count view %+v, want %+v", got, wantKeep)
	}
	if got := rr.Result(); got.Err != nil || got.Count != wantRows.Count || !got.Rows.Equal(wantRows.Rows) {
		t.Fatalf("recovered rows view differs: %+v vs %+v", got, wantRows)
	}
	if rk.Source() != keep.Source() || rk.Mode() != keep.Mode() {
		t.Fatalf("recovered view lost its definition: %q %v", rk.Source(), rk.Mode())
	}

	// Ids continue past the recovered ones.
	fresh, err := re.Materialize("Y(A,B) :- E(A,B)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range []string{keep.ID(), rows.ID(), gone.ID()} {
		if fresh.ID() == old {
			t.Fatalf("fresh view reused id %s", old)
		}
	}

	// Maintenance still runs differentially after recovery.
	for i := 0; i < 5; i++ {
		if _, err := re.Apply(matRandomBatch(r, "E", 1+r.Intn(10), domain)); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, re, rk, matViewSpec{name: "recovered-count",
			query: "T(A,B,C) :- E(A,B), E(B,C), E(C,A)", opts: MaterializeOptions{}})
		checkAgainstRecompute(t, re, rr, matViewSpec{name: "recovered-rows",
			query: "P(A,B,C) :- E(A,B), E(B,C)",
			opts:  MaterializeOptions{Mode: MaterializeRows, Project: []string{"A", "C"}}})
	}
}

// TestMaterializeClosedDB checks that a closed durable DB rejects new
// registrations (writers must fail rather than continue non-durably).
func TestMaterializeClosedDB(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(dataset.RandomGraph(10, 30, 2)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("X(A,B) :- E(A,B)", MaterializeOptions{}); err == nil {
		t.Fatal("Materialize succeeded on a closed DB")
	}
}

// TestMaterializeViewsList checks registration-order listing.
func TestMaterializeViewsList(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(10, 30, 4)); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 12; i++ {
		mq, err := db.Materialize("X(A,B) :- E(A,B)", MaterializeOptions{Mode: MaterializeMode(i % 2)})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, mq.ID())
	}
	got := db.MaterializedViews()
	if len(got) != len(want) {
		t.Fatalf("listed %d views, want %d", len(got), len(want))
	}
	for i, mq := range got {
		if mq.ID() != want[i] {
			t.Fatalf("view %d listed as %s, want %s (registration order)", i, mq.ID(), want[i])
		}
	}
}

// TestMaterializeChurnBatch pins the per-batch delta semantics end to
// end: a batch whose operations cancel (insert then delete of the same
// novel tuple) must leave the maintained value unchanged, while
// resurrection (delete then insert of a live tuple) must too.
func TestMaterializeChurnBatch(t *testing.T) {
	db := NewDB()
	e := NewRelationBuilder("E", "src", "dst")
	for _, ed := range [][2]int{{1, 2}, {2, 3}, {3, 1}} {
		if err := e.Add(Value(ed[0]), Value(ed[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register(e.Build()); err != nil {
		t.Fatal(err)
	}
	mq, err := db.Materialize("T(A,B,C) :- E(A,B), E(B,C), E(C,A)", MaterializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mq.Count() != 3 {
		t.Fatalf("initial count %d, want 3", mq.Count())
	}

	// Net-nothing churn: a novel edge inserted and deleted in one batch,
	// and a live edge deleted and re-inserted.
	b := NewBatch().
		Insert("E", Tuple{7, 8}).Delete("E", Tuple{7, 8}).
		Delete("E", Tuple{1, 2}).Insert("E", Tuple{1, 2})
	us, err := db.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	res := mq.Result()
	if res.Err != nil || res.Count != 3 {
		t.Fatalf("after churn batch: %+v, want count 3", res)
	}
	if res.Epoch != us.Epoch {
		t.Fatalf("view epoch %d, batch epoch %d", res.Epoch, us.Epoch)
	}

	// Breaking the cycle in the same batch that builds a new one.
	b = NewBatch().
		Delete("E", Tuple{3, 1}).
		Insert("E", Tuple{3, 4}).Insert("E", Tuple{4, 1})
	if _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := mq.Count(); got != 0 {
		t.Fatalf("after breaking the 3-cycle into a 4-path: count %d, want 0", got)
	}
	if _, err := db.Insert("E", Tuple{1, 3}); err != nil {
		t.Fatal(err)
	}
	// 1→3→4→1 is a triangle via edges (3,4),(4,1),(1,3): 3 rotations.
	if got := mq.Count(); got != 3 {
		t.Fatalf("after closing the new cycle: count %d, want 3", got)
	}
}

// TestMaterializeID sanity-checks the id formatting the WAL replay
// parses back.
func TestMaterializeID(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(10, 30, 6)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mq, err := db.Materialize("X(A,B) :- E(A,B)", MaterializeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m%d", i); mq.ID() != want {
			t.Fatalf("view id %q, want %q", mq.ID(), want)
		}
	}
}
