package wcoj_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"wcoj"
)

// ExampleExecute evaluates the triangle query on a six-edge graph with
// Generic-Join.
func ExampleExecute() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("E", "src", "dst")
	for _, e := range [][2]wcoj.Value{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 1}, {2, 4}} {
		if err := b.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(b.Build())

	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := wcoj.Execute(q, wcoj.Options{Algorithm: wcoj.AlgoGenericJoin})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		fmt.Println(out.Tuple(i, nil))
	}
	// Output:
	// (1, 2, 3)
	// (2, 3, 4)
}

// ExampleAGMBound prices the worst case of a query before running it.
func ExampleAGMBound() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("E", "src", "dst")
	for i := wcoj.Value(0); i < 10; i++ {
		for j := wcoj.Value(0); j < 10; j++ {
			if err := b.Add(i, j); err != nil {
				log.Fatal(err)
			}
		}
	}
	db.Put(b.Build())
	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	agm, err := wcoj.AGMBound(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rho* = %.1f, bound = %.0f\n", agm.Rho, agm.Bound)
	// Output:
	// rho* = 1.5, bound = 1000
}

// ExampleModularBound shows the degree-constraint bound of
// Proposition 4.4 with its dual exponents.
func ExampleModularBound() {
	db := wcoj.NewDatabase()
	r := wcoj.NewRelationBuilder("R", "A")
	s := wcoj.NewRelationBuilder("S", "A", "B")
	for a := wcoj.Value(0); a < 4; a++ {
		if err := r.Add(a); err != nil {
			log.Fatal(err)
		}
		for j := wcoj.Value(0); j < 2; j++ {
			if err := s.Add(a, 2*a+j); err != nil {
				log.Fatal(err)
			}
		}
	}
	db.Put(r.Build())
	db.Put(s.Build())
	q, err := wcoj.MustParse("Q(A,B) :- R(A), S(A,B)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	dc := wcoj.ConstraintSet{
		wcoj.Cardinality("R", []string{"A"}, 4),
		wcoj.Degree("S", []string{"A"}, []string{"A", "B"}, 2),
	}
	bound, err := wcoj.ModularBound(q, dc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bound = %.0f tuples (delta = %.0f, %.0f)\n", bound.Bound, bound.Delta[0], bound.Delta[1])
	// Output:
	// bound = 8 tuples (delta = 1, 1)
}

// ExampleExplain shows the cost-based planner reading the data's
// degree statistics: every R edge points at a single hub value of B,
// so binding B first prices its prefix at one tuple, while the worst
// order pays the A×C cross product before any join constraint
// applies.
func ExampleExplain() {
	db := wcoj.NewDatabase()
	r := wcoj.NewRelationBuilder("R", "a", "b")
	for i := wcoj.Value(1); i <= 100; i++ {
		if err := r.Add(i, 0); err != nil { // a star: every edge hits hub 0
			log.Fatal(err)
		}
	}
	s := wcoj.NewRelationBuilder("S", "b", "c")
	for j := wcoj.Value(0); j < 5; j++ {
		if err := s.Add(0, 200+j); err != nil {
			log.Fatal(err)
		}
	}
	for k := wcoj.Value(0); k < 40; k++ {
		if err := s.Add(300+2*k, 301+2*k); err != nil { // distractors: sources absent from R
			log.Fatal(err)
		}
	}
	db.Put(r.Build())
	db.Put(s.Build())
	q, err := wcoj.MustParse("Q(A,B,C) :- R(A,B), S(B,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	e, err := wcoj.Explain(q, wcoj.Options{Planner: wcoj.PlannerCostBased})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy:", e.Policy)
	fmt.Println("chosen:", e.Order)
	fmt.Println("worst: ", e.Worst.Order)
	fmt.Printf("scored %d orders (exhaustive=%v)\n", e.Considered, e.Exhaustive)
	// Output:
	// policy: cost-based
	// chosen: [B C A]
	// worst:  [A C B]
	// scored 6 orders (exhaustive=true)
}

// ExampleExecute_costBasedPlanner runs the triangle query with
// Options.Planner set to the cost-based optimizer: the variable order
// is chosen from measured degree statistics, and the materialized
// output is identical to every other order.
func ExampleExecute_costBasedPlanner() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("E", "src", "dst")
	for _, e := range [][2]wcoj.Value{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 1}, {2, 4}} {
		if err := b.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(b.Build())

	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := wcoj.Execute(q, wcoj.Options{
		Algorithm: wcoj.AlgoLeapfrog,
		Planner:   wcoj.PlannerCostBased,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		fmt.Println(out.Tuple(i, nil))
	}
	// Output:
	// (1, 2, 3)
	// (2, 3, 4)
}

// ExampleCount counts without enumerating: Count runs the aggregate
// pushdown plan by default, and Explain reports that plan in its Count
// field — single-atom variables are sunk past CountFrom and multiplied
// through instead of searched.
func ExampleCount() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("E", "src", "dst")
	for _, e := range [][2]wcoj.Value{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 1}, {2, 4}} {
		if err := b.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(b.Build())

	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	n, _, err := wcoj.Count(q, wcoj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := wcoj.Explain(q, wcoj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-paths: %d\n", n)
	fmt.Printf("order: %v counted from level %d\n", e.Count.Order, e.Count.CountFrom)
	// Output:
	// 2-paths: 8
	// order: [B A C] counted from level 1
}

// ExampleOptions_context cancels a one-shot query through
// Options.Context — the same per-256-nodes polling the DB/PreparedQuery
// entry points drive through their explicit ctx parameter, so a free
// function and a prepared query abort identically.
func ExampleOptions_context() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("K", "x", "y")
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if err := b.Add(wcoj.Value(i), wcoj.Value(j)); err != nil {
				log.Fatal(err)
			}
		}
	}
	db.Put(b.Build())
	q, err := wcoj.MustParse("Q(A,B,C,D) :- K(A,B), K(B,C), K(C,D)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}

	// The complete bipartite product has ~10^8 results; cancel instead
	// of enumerating them.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = wcoj.Execute(q, wcoj.Options{Context: ctx})
	fmt.Println("one-shot:", err)

	// Equivalent cancellation of the prepared form.
	sdb := wcoj.NewDB()
	if err := sdb.Register(wcoj.NewRelation("K", []string{"x", "y"}, []wcoj.Tuple{{1, 1}})); err != nil {
		log.Fatal(err)
	}
	pq, err := sdb.Prepare("Q(A,B,C,D) :- K(A,B), K(B,C), K(C,D)", wcoj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_, _, err = pq.Execute(ctx)
	fmt.Println("prepared:", err)
	// Output:
	// one-shot: context canceled
	// prepared: context canceled
}

// ExampleExecute_project enumerates the distinct endpoints of 2-paths:
// the middle variable B is projected away and existence-checked, never
// enumerated.
func ExampleExecute_project() {
	db := wcoj.NewDatabase()
	b := wcoj.NewRelationBuilder("E", "src", "dst")
	for _, e := range [][2]wcoj.Value{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 1}, {2, 4}} {
		if err := b.Add(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	db.Put(b.Build())

	q, err := wcoj.MustParse("Q(A,B,C) :- E(A,B), E(B,C)").Bind(db)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := wcoj.Execute(q, wcoj.Options{Project: []string{"A", "C"}})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		fmt.Println(out.Tuple(i, nil))
	}
	// Output:
	// (1, 3)
	// (1, 4)
	// (2, 1)
	// (2, 4)
	// (3, 1)
	// (4, 2)
	// (4, 3)
}

// ExampleDB demonstrates the long-lived engine: relations are
// registered once (here from CSV text), queries are prepared once, and
// the prepared plan is re-executed with context cancellation and
// per-call stats.
func ExampleDB() {
	db := wcoj.NewDB()
	csv := "person,follows\nalice,bob\nbob,carol\nalice,carol\n"
	if _, err := db.LoadCSV(strings.NewReader(csv), "F", wcoj.CSVOptions{Dict: db.Dict()}); err != nil {
		log.Fatal(err)
	}

	pq, err := db.Prepare("Q(A,B,C) :- F(A,B), F(B,C), F(A,C)", wcoj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := pq.Execute(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	dict := db.Dict()
	var row wcoj.Tuple
	for i := 0; i < out.Len(); i++ {
		row = out.Tuple(i, row)
		fmt.Printf("%s -> %s -> %s\n", dict.String(row[0]), dict.String(row[1]), dict.String(row[2]))
	}
	fmt.Println("calls:", pq.Stats().Calls)
	// Output:
	// alice -> bob -> carol
	// calls: 1
}

// ExampleDB_Insert updates a live relation in place: the prepared
// query keeps its plan across the batch — only the touched relation's
// tries are re-versioned by merging the delta — and duplicate inserts
// or absent deletes are exact no-ops.
func ExampleDB_Insert() {
	db := wcoj.NewDB()
	if err := db.Register(wcoj.NewRelation("E", []string{"src", "dst"}, []wcoj.Tuple{
		{1, 2}, {2, 3}, {1, 3},
	})); err != nil {
		log.Fatal(err)
	}
	pq, err := db.Prepare("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", wcoj.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	n, _, _ := pq.Count(ctx)
	fmt.Println("triangles before:", n)

	// One atomic batch: close a second triangle, retract an edge of the
	// first, and try a duplicate insert (a counted no-op).
	stats, err := db.Apply(wcoj.NewBatch().
		Insert("E", wcoj.Tuple{3, 4}, wcoj.Tuple{2, 4}, wcoj.Tuple{2, 3}).
		Delete("E", wcoj.Tuple{1, 3}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d (noops %d), deleted %d\n", stats.Inserted, stats.InsertNoops, stats.Deleted)

	// The held prepared query sees the new snapshot without replanning.
	n, _, _ = pq.Count(ctx)
	fmt.Println("triangles after:", n)
	// Output:
	// triangles before: 1
	// inserted 2 (noops 1), deleted 1
	// triangles after: 1
}

// ExampleDB_Materialize keeps a standing triangle count over an edge
// stream. Materialize computes the answer once; every subsequent batch
// folds its signed delta into the registered result differentially, so
// reading the count is one atomic load — no join runs at read time,
// and the value is always exactly the epoch the last Apply published.
func ExampleDB_Materialize() {
	db := wcoj.NewDB()
	if err := db.Register(wcoj.NewRelation("E", []string{"src", "dst"}, []wcoj.Tuple{
		{1, 2}, {2, 3},
	})); err != nil {
		log.Fatal(err)
	}
	mq, err := db.Materialize("Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", wcoj.MaterializeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", mq.Count())

	// Stream edges in one at a time; the view tracks every batch.
	for _, e := range []wcoj.Tuple{{1, 3}, {3, 4}, {2, 4}} {
		if _, err := db.Insert("E", e); err != nil {
			log.Fatal(err)
		}
		fmt.Println("triangles:", mq.Count())
	}
	// Retraction subtracts the triangles the edge carried.
	if _, err := db.Delete("E", wcoj.Tuple{1, 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", mq.Count())
	// Output:
	// triangles: 0
	// triangles: 1
	// triangles: 1
	// triangles: 2
	// triangles: 1
}
