package wcoj

// The write path of the mutable-relation layer: batched inserts and
// deletes land in per-relation delta logs (internal/delta), publish as
// one atomic snapshot swap, and are absorbed by readers through
// level-merged (base ⊎ delta) tries resolved per execution. Dataflow:
//
//	Insert/Delete/Apply ──► delta.Version.Apply (O(batch·log) off-lock)
//	        │                        │
//	        │ publish (db.mu, all relations of the batch at once)
//	        ▼                        ▼
//	versions[name] head ──► updEpoch++ ──► prepared queries refresh
//	                                        lazily: base trie (cached)
//	                                        + sorted delta ──trie.Merge──►
//	                                        merged snapshot trie
//	        │
//	        └─ delta depth ≥ ratio·|base| ──► background compaction:
//	           Effective() promoted to the new base, delta emptied,
//	           merged tries become the base tries (same backing array).

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"wcoj/internal/core"
	"wcoj/internal/delta"
	"wcoj/internal/relation"
	"wcoj/internal/trie"
)

// DefaultCompactionRatio is the delta-to-base size ratio past which a
// background compaction folds a relation's delta log into a fresh
// base. At 1/4, read-side merge work stays within a constant factor
// of the base scan while compactions stay rare under steady streams.
const DefaultCompactionRatio = 0.25

// defaultCompactionMinBase keeps tiny relations from churning through
// compactions on every few updates: the ratio is taken against at
// least this base size. Small deltas are cheap to merge anyway.
const defaultCompactionMinBase = 1024

// UpdateStats reports what one update call changed. No-ops — inserts
// of tuples already present, deletes of tuples absent — are counted
// exactly and change nothing (not the data, not the delta depth).
type UpdateStats struct {
	// Inserted and Deleted count effective changes.
	Inserted, Deleted int
	// InsertNoops and DeleteNoops count operations with no effect.
	InsertNoops, DeleteNoops int
	// Epoch is the DB's update epoch after the call.
	Epoch uint64
}

// Batch accumulates insert and delete operations across any number of
// relations for one atomic Apply. The zero value is ready to use.
type Batch struct {
	ops   map[string][]delta.Op
	order []string // relation names in first-touch order
	n     int
}

// NewBatch returns an empty batch (equivalent to new(Batch)).
func NewBatch() *Batch { return &Batch{} }

// Insert queues tuples for insertion into the named relation.
func (b *Batch) Insert(rel string, tuples ...Tuple) *Batch {
	return b.add(rel, false, tuples)
}

// Delete queues tuples for deletion from the named relation.
func (b *Batch) Delete(rel string, tuples ...Tuple) *Batch {
	return b.add(rel, true, tuples)
}

func (b *Batch) add(rel string, del bool, tuples []Tuple) *Batch {
	if b.ops == nil {
		b.ops = make(map[string][]delta.Op)
	}
	if _, ok := b.ops[rel]; !ok {
		b.order = append(b.order, rel)
		// Materialize the entry even for an empty tuple list: the order
		// dedup above keys on map membership, and a name registered
		// twice would apply its operations twice (double-counted stats).
		b.ops[rel] = []delta.Op{}
	}
	for _, t := range tuples {
		b.ops[rel] = append(b.ops[rel], delta.Op{Del: del, T: t.Clone()})
		b.n++
	}
	return b
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return b.n }

// Insert adds tuples to the named relation. Tuples already present
// are no-ops (counted in UpdateStats, never logged). Equivalent to
// Apply of a single-relation insert batch; see Apply for atomicity
// and visibility semantics.
func (db *DB) Insert(rel string, tuples ...Tuple) (UpdateStats, error) {
	return db.Apply(new(Batch).Insert(rel, tuples...))
}

// Delete removes tuples from the named relation. Tuples not present
// are no-ops (counted in UpdateStats, never logged). Equivalent to
// Apply of a single-relation delete batch; see Apply for atomicity
// and visibility semantics.
func (db *DB) Delete(rel string, tuples ...Tuple) (UpdateStats, error) {
	return db.Apply(new(Batch).Delete(rel, tuples...))
}

// Apply folds one batch of updates into the engine, atomically:
// either every operation is published (as one snapshot swap across
// all touched relations) or, on error, none is. Operations apply in
// queue order within each relation. Concurrent executions that
// started before the swap keep their snapshot; executions that start
// after it see the whole batch — never part of it. Prepared queries
// are not invalidated: at their next execution they re-version only
// the touched relations' tries, merging the delta log into the cached
// base trie in linear time instead of re-sorting or re-planning.
//
// A batch that changes nothing (all no-ops) does not advance the
// update epoch, so readers skip the refresh entirely.
func (db *DB) Apply(b *Batch) (UpdateStats, error) {
	var us UpdateStats
	if b == nil || b.Len() == 0 {
		us.Epoch = db.updEpoch.Load()
		return us, nil
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.walClosed {
		return us, fmt.Errorf("wcoj: Apply: DB is closed")
	}

	// Snapshot the touched heads (writers are serialized by writeMu,
	// so these stay the heads until we publish).
	db.mu.RLock()
	heads := make(map[string]*delta.Version, len(b.order))
	for _, name := range b.order {
		v, ok := db.versions[name]
		if !ok {
			db.mu.RUnlock()
			return us, fmt.Errorf("wcoj: Apply: no relation %q", name)
		}
		heads[name] = v
	}
	db.mu.RUnlock()

	// Fold each relation's operations off-lock; reject the whole batch
	// on the first error (nothing has been published yet).
	next := make(map[string]*delta.Version, len(b.order))
	for _, name := range b.order {
		nv, st, err := heads[name].Apply(b.ops[name])
		if err != nil {
			return us, err
		}
		us.Inserted += st.Inserted
		us.Deleted += st.Deleted
		us.InsertNoops += st.InsertNoops
		us.DeleteNoops += st.DeleteNoops
		if nv != heads[name] {
			next[name] = nv
		}
	}

	// Durability before visibility: the effective batch is logged and
	// fsynced before any reader can observe it. A crash after this
	// point replays the batch; a crash during the append leaves a torn
	// tail that recovery truncates — the batch was never acknowledged.
	if len(next) > 0 {
		if err := db.walAppendBatchLocked(b); err != nil {
			return us, err
		}
	}

	// Maintain registered views against (pre-batch, post-batch) before
	// publishing: their successor values are computed here, off-lock,
	// and land in the same critical section as the version swap, so a
	// reader never pairs a view value with the wrong DBStats.Epoch.
	var ups []viewUpdate
	if len(next) > 0 {
		ups = db.maintainViews(next)
	}

	// Publish every touched relation in one critical section: a reader
	// snapshotting under mu.RLock sees all of the batch or none of it.
	db.mu.Lock()
	for name, nv := range next {
		db.versions[name] = nv //wcojlint:nosync loop runs only when next is non-empty, and then the batch was synced above
	}
	for _, u := range ups {
		u.mq.val.Store(u.res) //wcojlint:nosync the batch driving this value was synced above
	}
	if len(next) > 0 {
		db.updEpoch.Add(1)
	}
	us.Epoch = db.updEpoch.Load()
	db.mu.Unlock()

	db.batches.Add(1)
	db.inserts.Add(uint64(us.Inserted))
	db.deletes.Add(uint64(us.Deleted))
	db.insertNoops.Add(uint64(us.InsertNoops))
	db.deleteNoops.Add(uint64(us.DeleteNoops))

	for name, nv := range next {
		db.maybeCompact(name, nv)
	}
	return us, nil
}

// SetCompactionThreshold replaces the delta-to-base size ratio that
// triggers background compaction and returns the previous one. Ratios
// <= 0 compact after every effective batch; very large ratios
// effectively disable automatic compaction (Compact still works).
func (db *DB) SetCompactionThreshold(ratio float64) float64 {
	return math.Float64frombits(db.compactRatio.Swap(math.Float64bits(ratio)))
}

// maybeCompact schedules a background compaction of the relation when
// its delta depth crossed the threshold and no sweep is in flight.
func (db *DB) maybeCompact(name string, v *delta.Version) {
	ratio := math.Float64frombits(db.compactRatio.Load())
	if !v.NeedsCompaction(ratio, db.compactMinBase) {
		return
	}
	db.mu.Lock()
	if db.compacting[name] {
		db.mu.Unlock()
		return
	}
	db.compacting[name] = true //wcojlint:nosync compacting is a scheduling latch, not durable state
	db.mu.Unlock()
	go db.backgroundCompact(name, v)
}

// backgroundCompact runs one sweep for the head v, then hands the
// relation's sweep slot back and re-arms: batches that landed while
// the sweep was in flight were skipped by maybeCompact (the slot was
// taken), so the current head must be re-checked or a deep delta
// could sit above the threshold forever.
func (db *DB) backgroundCompact(name string, v *delta.Version) {
	if db.installCompacted(name, v) {
		// Compaction's durable twin: the folded history no longer needs
		// its log records, so snapshot and restart the log. Errors are
		// swallowed — the old generation remains the recovery source,
		// strictly more history than needed, never less.
		db.walSnapshot() //nolint:errcheck
	}
	db.mu.Lock()
	db.compacting[name] = false //wcojlint:nosync compacting is a scheduling latch, not durable state
	head := db.versions[name]
	db.mu.Unlock()
	if head != nil && head.DeltaLen() > 0 {
		db.maybeCompact(name, head)
	}
}

// installCompacted folds v's delta into a fresh base and installs it
// if v is still the head (a concurrent batch moving the head wins).
// The merge runs outside every lock; the install is one pointer swap.
// The update epoch does not advance: the tuple set is unchanged, so
// readers at this epoch stay valid, and the promoted base is
// pointer-identical to the effective view their merged tries were
// keyed by.
func (db *DB) installCompacted(name string, v *delta.Version) bool {
	c := v.Compacted()
	db.mu.Lock()
	ok := db.versions[name] == v
	if ok {
		db.versions[name] = c
	}
	db.mu.Unlock()
	if ok {
		db.compactions.Add(1)
	}
	return ok
}

// Compact synchronously folds the delta logs of the named relations
// (all registered relations when none are named) into fresh bases,
// regardless of the size-ratio threshold. Useful before a read-heavy
// phase and in tests and benchmarks that need deterministic state.
// It does not touch the background sweep slots: a sweep already in
// flight for the same head simply loses the install race.
func (db *DB) Compact(names ...string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if len(names) == 0 {
		names = db.Names()
	}
	compacted := false
	for _, name := range names {
		db.mu.RLock()
		v, ok := db.versions[name]
		db.mu.RUnlock()
		if !ok {
			return fmt.Errorf("wcoj: Compact: no relation %q", name)
		}
		if v.DeltaLen() == 0 {
			continue
		}
		if db.installCompacted(name, v) {
			compacted = true
		}
	}
	if compacted {
		return db.walSnapshotLocked()
	}
	return nil
}

// ApplyDeltaCSV reads a delta file (relation.ReadDeltaCSV: "+,..."
// inserts, "-,..." deletes) and applies it to the named relation as
// one atomic batch — deletes first, then inserts, matching the
// target-state semantics of a delta file (a tuple on both sides ends
// up present). Field parsing follows opt exactly as in LoadCSV.
func (db *DB) ApplyDeltaCSV(r io.Reader, rel string, opt CSVOptions) (UpdateStats, error) {
	d, err := relation.ReadDeltaCSV(r, rel, opt)
	if err != nil {
		return UpdateStats{Epoch: db.updEpoch.Load()}, err
	}
	return db.Apply(new(Batch).Delete(rel, d.Delete...).Insert(rel, d.Insert...))
}

// ApplyDeltaFile is ApplyDeltaCSV over a file path; .tsv/.tab paths
// default the delimiter to a tab. Unlike LoadFile — where the file
// defines the relation's encoding — a delta must match the encoding
// the relation already uses, which the file extension cannot reveal:
// fields parse as integers unless the caller passes the dictionary
// the relation was loaded with (opt.Dict, typically db.Dict()).
// Defaulting dict interning from a .csv suffix would silently turn
// "+,7,8" into dense dict IDs against an integer-encoded relation.
func (db *DB) ApplyDeltaFile(path, rel string, opt CSVOptions) (UpdateStats, error) {
	if opt.Comma == 0 && (strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".tab")) {
		opt.Comma = '\t'
	}
	f, err := os.Open(path)
	if err != nil {
		return UpdateStats{Epoch: db.updEpoch.Load()}, err
	}
	defer f.Close()
	return db.ApplyDeltaCSV(f, rel, opt)
}

// dbTrieSource resolves per-atom tries against one version snapshot:
// the cached base trie when the atom's relation has an empty delta,
// otherwise a merged snapshot trie — the cached base trie plus the
// delta log sorted into the atom's order, folded by trie.Merge's
// linear level merge and cached in the store under the effective
// relation's identity. In-flight plans keep whatever tries they
// resolved (copy-on-write: a merge never mutates the base trie), and
// after compaction the cached merged tries keep serving as the new
// base tries, because the promoted base is the same *Relation the
// merged tries were keyed by.
type dbTrieSource struct {
	store *core.TrieStore
	vers  map[string]*delta.Version
}

// Get implements core.TrieSource.
func (s dbTrieSource) Get(a core.Atom, atomOrder []string) (*trie.Trie, error) {
	return versionTrie(s.store, a, atomOrder, s.vers[a.Name])
}

// versionTrie resolves one atom's trie against one version snapshot —
// the shared core of dbTrieSource (prepared queries) and matTrieSource
// (view maintenance, dbmaterialize.go).
func versionTrie(store *core.TrieStore, a core.Atom, atomOrder []string, ver *delta.Version) (*trie.Trie, error) {
	if ver == nil || ver.DeltaLen() == 0 {
		return store.Get(a, atomOrder)
	}
	// a.Rel is the snapshot's effective relation (atoms are rebound
	// before planning), so the store key is stable per (version,
	// binding, order): later executions and sibling plans hit here.
	if tr, ok := store.Lookup(a, atomOrder); ok {
		return tr, nil
	}
	// Native-order binding: the snapshot refresh already materialized
	// Effective() (one linear merge) to rebind the atom, and that
	// relation is sorted in exactly this order — build the trie over
	// its storage directly instead of re-running the identical merge
	// through trie.Merge.
	if sameOrder(atomOrder, a.Vars) {
		rn, err := ver.Effective().Rename(a.Name, a.Vars...)
		if err != nil {
			return nil, err
		}
		tr, err := trie.Build(rn, atomOrder)
		if err != nil {
			return nil, err
		}
		return store.Add(a, atomOrder, tr), nil
	}
	baseAtom := a
	baseAtom.Rel = ver.Base
	bt, err := store.Get(baseAtom, atomOrder)
	if err != nil {
		return nil, err
	}
	add, err := renameSort(ver.Add, a, atomOrder)
	if err != nil {
		return nil, err
	}
	del, err := renameSort(ver.Del, a, atomOrder)
	if err != nil {
		return nil, err
	}
	merged, err := trie.Merge(bt, add, del)
	if err != nil {
		return nil, err
	}
	return store.Add(a, atomOrder, merged), nil
}

// renameSort renames a delta relation to the atom's variables and
// sorts it under the atom's trie order — O(D log D) on the delta,
// never on the base.
func renameSort(r *relation.Relation, a core.Atom, atomOrder []string) (*relation.Relation, error) {
	rn, err := r.Rename(a.Name, a.Vars...)
	if err != nil {
		return nil, err
	}
	if sameOrder(atomOrder, rn.Attrs()) {
		return rn, nil
	}
	return rn.SortedBy(atomOrder)
}

// sameOrder reports whether two attribute lists are elementwise equal.
func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
