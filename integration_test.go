package wcoj

// Cross-module integration tests: generator → TSV round trip → parser
// → every join algorithm → bounds → entropy sandwich → PANDA, all on
// the same workloads.

import (
	"bytes"
	"math"
	"testing"

	"wcoj/internal/bounds"
	"wcoj/internal/core"
	"wcoj/internal/dataset"
	"wcoj/internal/panda"
	"wcoj/internal/relation"
	"wcoj/internal/stats"
)

// TestIntegrationPipeline drives the full user-facing flow on a skewed
// triangle workload.
func TestIntegrationPipeline(t *testing.T) {
	tri := dataset.TriangleSkew(400)

	// TSV round trip (what cmd/wcoj and cmd/wcojgen do).
	db := NewDatabase()
	for _, r := range []*Relation{tri.R, tri.S, tri.T} {
		var buf bytes.Buffer
		if err := relation.WriteTSV(&buf, r); err != nil {
			t.Fatal(err)
		}
		back, err := relation.ReadTSV(&buf, r.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(r) {
			t.Fatalf("TSV round trip changed %s", r.Name())
		}
		db.Put(back)
	}

	q, err := MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}

	// All five algorithms agree.
	var want *Relation
	for _, algo := range []Algorithm{
		AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject,
	} {
		got, _, err := Execute(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if want == nil {
			want = got
		} else if !got.Equal(want) {
			t.Fatalf("%v disagrees", algo)
		}
	}

	// Bound sandwich: log|Q| ≤ polymatroid = AGM (cardinality only).
	agm, err := AGMBound(q)
	if err != nil {
		t.Fatal(err)
	}
	dc := stats.Cardinalities(q)
	poly, err := PolymatroidBound(q, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(poly.LogBound-agm.LogBound) > 1e-6 {
		t.Fatalf("polymatroid %v vs AGM %v", poly.LogBound, agm.LogBound)
	}
	logOut := math.Log2(float64(want.Len()))
	if logOut > poly.LogBound+1e-9 {
		t.Fatalf("output %v exceeds bound %v", logOut, poly.LogBound)
	}

	// Entropy witness: H[full] = log|Q|, H is a polymatroid, and every
	// cardinality constraint holds as H[Y] ≤ log N.
	h, err := stats.OutputEntropy(want, q.Vars)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Get(h.Full())-logOut) > 1e-9 {
		t.Fatal("H[full] != log|Q|")
	}
	if !h.IsPolymatroid(1e-9) {
		t.Fatal("output entropy is not a polymatroid")
	}
}

// TestIntegrationExample1AllEngines runs the paper's Example 1 query
// through Generic-Join, LFTJ, binary joins and the PANDA executor and
// checks they produce the identical result.
func TestIntegrationExample1AllEngines(t *testing.T) {
	d := dataset.NewExample1(800, 3, 3, 0.3, 5)
	q, err := core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: d.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: d.S},
		{Name: "T", Vars: []string{"C", "D"}, Rel: d.T},
		{Name: "W", Vars: []string{"A", "C", "D"}, Rel: d.W},
		{Name: "V", Vars: []string{"A", "B", "D"}, Rel: d.V},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Execute(q, Options{Algorithm: AlgoGenericJoin})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoLeapfrog, AlgoBinaryJoin, AlgoBinaryJoinProject} {
		got, _, err := Execute(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v disagrees with generic join", algo)
		}
	}

	// PANDA on the Table 2 sequence.
	st := panda.Example1Stats{
		NAB: float64(d.R.Len()), NBC: float64(d.S.Len()), NCD: float64(d.T.Len()),
		NACDgAC: 3, NABDgBD: 3,
	}
	ps := panda.Example1Sequence(st)
	affil := panda.Affiliation{
		{S: 0b0011}:            d.R,
		{S: 0b0110}:            d.S,
		{S: 0b1100}:            d.T,
		{S: 0b1101, G: 0b0101}: d.W,
		{S: 0b1011, G: 0b1010}: d.V,
	}
	got, est, err := panda.Execute(ps, panda.Example1Vars, affil,
		[]*relation.Relation{d.R, d.S, d.T, d.W, d.V})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("PANDA %d rows vs generic join %d", got.Len(), want.Len())
	}
	if float64(est.Intermediate) > st.RuntimeBound()+1 {
		t.Fatalf("PANDA intermediate %d exceeds the (75) bound %v", est.Intermediate, st.RuntimeBound())
	}
	// The polymatroid bound with the Example 1 degree constraints must
	// dominate the measured output.
	dc := ConstraintSet{
		Cardinality("R", []string{"A", "B"}, st.NAB),
		Cardinality("S", []string{"B", "C"}, st.NBC),
		Cardinality("T", []string{"C", "D"}, st.NCD),
		Degree("W", []string{"A", "C"}, []string{"A", "C", "D"}, st.NACDgAC),
		Degree("V", []string{"B", "D"}, []string{"A", "B", "D"}, st.NABDgBD),
	}
	if err := stats.VerifySatisfies(q, dc); err != nil {
		t.Fatal(err)
	}
	poly, err := bounds.Polymatroid(q.Vars, dc)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() > 0 && math.Log2(float64(want.Len())) > poly.LogBound+1e-9 {
		t.Fatalf("output exceeds the polymatroid bound")
	}
	// The Shannon-flow inequality of the Table 2 sequence evaluates the
	// bound (75)'s exponent: ½Σ log N ≥ polymatroid optimum.
	halfSum := 0.5 * (math.Log2(st.NAB) + math.Log2(st.NBC) + math.Log2(st.NCD) +
		math.Log2(st.NACDgAC) + math.Log2(st.NABDgBD))
	if poly.LogBound > halfSum+1e-6 {
		t.Fatalf("polymatroid %v exceeds the Shannon-flow value %v", poly.LogBound, halfSum)
	}
}

// TestIntegrationChain63Backtracking ties Prop 5.2, the modular LP and
// Algorithm 3 together on query (63): the dual δ prices the search and
// the search result matches Generic-Join.
func TestIntegrationChain63Backtracking(t *testing.T) {
	c := dataset.NewChain63(30, 3, 3, 3, 9)
	q, err := NewQuery([]string{"A", "B", "C", "D"}, []Atom{
		{Name: "R", Vars: []string{"A"}, Rel: c.R},
		{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
		{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := ConstraintSet{
		Cardinality("R", []string{"A"}, float64(c.NA)),
		Degree("S", []string{"A"}, []string{"A", "B"}, float64(c.NBgA)),
		Degree("T", []string{"B"}, []string{"B", "C"}, float64(c.NCgB)),
		Degree("W", []string{"C"}, []string{"C", "A", "D"}, float64(c.NADgC)),
	}
	if err := stats.VerifySatisfies(q, dc); err != nil {
		t.Fatal(err)
	}
	repaired, err := MakeAcyclic(dc, q.Vars)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ModularBound(q, repaired)
	if err != nil {
		t.Fatal(err)
	}
	// Strong duality (73): Σ δ log N = bound.
	du := 0.0
	for i, cc := range repaired {
		du += mod.Delta[i] * cc.LogN()
	}
	if math.Abs(du-mod.LogBound) > 1e-6 {
		t.Fatalf("duality gap %v vs %v", du, mod.LogBound)
	}
	got, st, err := Execute(q, Options{Algorithm: AlgoBacktracking, Constraints: repaired})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Execute(q, Options{Algorithm: AlgoGenericJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Algorithm 3 disagrees with Generic-Join")
	}
	if float64(got.Len()) > mod.Bound+1e-6 {
		t.Fatalf("output %d exceeds the bound %v", got.Len(), mod.Bound)
	}
	if st.Output != got.Len() {
		t.Fatal("stats mismatch")
	}
}
