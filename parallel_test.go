package wcoj

// Serial vs parallel equivalence for the sharded execution engine.
// Every query integration_test.go exercises is re-run here at several
// worker counts; results must be byte-identical (same Relation, same
// Count, same ExecuteFunc emission sequence) at every setting. Run
// with -race: the engine must be free of shared mutable state.

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"wcoj/internal/core"
	"wcoj/internal/dataset"
)

// parallelisms covers the edge cases the engine normalizes: 1 (forced
// serial), 0 (default, GOMAXPROCS), a small explicit count, and a
// count far larger than any depth-0 intersection in these workloads.
var parallelisms = []int{1, 0, 3, 1 << 20}

// parallelQueries builds every query shape the integration suite runs.
func parallelQueries(t testing.TB) map[string]*Query {
	t.Helper()
	qs := make(map[string]*Query)

	tri := dataset.TriangleSkew(400)
	q, err := core.NewQuery([]string{"A", "B", "C"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: tri.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: tri.S},
		{Name: "T", Vars: []string{"A", "C"}, Rel: tri.T},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs["triangle-skew"] = q

	d := dataset.NewExample1(800, 3, 3, 0.3, 5)
	q, err = core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
		{Name: "R", Vars: []string{"A", "B"}, Rel: d.R},
		{Name: "S", Vars: []string{"B", "C"}, Rel: d.S},
		{Name: "T", Vars: []string{"C", "D"}, Rel: d.T},
		{Name: "W", Vars: []string{"A", "C", "D"}, Rel: d.W},
		{Name: "V", Vars: []string{"A", "B", "D"}, Rel: d.V},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs["example1"] = q

	c := dataset.NewChain63(30, 3, 3, 3, 9)
	q, err = core.NewQuery([]string{"A", "B", "C", "D"}, []core.Atom{
		{Name: "R", Vars: []string{"A"}, Rel: c.R},
		{Name: "S", Vars: []string{"A", "B"}, Rel: c.S},
		{Name: "T", Vars: []string{"B", "C"}, Rel: c.T},
		{Name: "W", Vars: []string{"C", "A", "D"}, Rel: c.W},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs["chain63"] = q

	e := dataset.RandomGraph(500, 2000, 11)
	db := NewDatabase()
	db.Put(e)
	q, err = MustParse("Q(A,B,C,D) :- E(A,B), E(B,C), E(C,D), E(D,A)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	qs["4cycle"] = q

	// Empty join: two disjoint edge sets share no B value, so the
	// depth-0 intersection under order B-first can be empty and the
	// output always is.
	lo := NewRelationBuilder("L", "a", "b")
	hi := NewRelationBuilder("H", "b", "c")
	for i := 0; i < 50; i++ {
		if err := lo.Add(Value(i), Value(i)); err != nil {
			t.Fatal(err)
		}
		if err := hi.Add(Value(i+1000), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db = NewDatabase()
	db.Put(lo.Build())
	db.Put(hi.Build())
	q, err = MustParse("Q(A,B,C) :- L(A,B), H(B,C)").Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	qs["empty"] = q

	return qs
}

// TestParallelMatchesSerial asserts Execute and Count agree with the
// serial run for every query, algorithm and worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for name, q := range parallelQueries(t) {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			serialOut, serialStats, err := Execute(q, Options{Algorithm: algo, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%v serial: %v", name, algo, err)
			}
			serialN, serialCountStats, err := Count(q, Options{Algorithm: algo, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%v serial count: %v", name, algo, err)
			}
			if serialN != serialOut.Len() {
				t.Fatalf("%s/%v: serial Count %d vs Execute %d", name, algo, serialN, serialOut.Len())
			}
			for _, p := range parallelisms {
				t.Run(fmt.Sprintf("%s/%v/p=%d", name, algo, p), func(t *testing.T) {
					opts := Options{Algorithm: algo, Parallelism: p}
					out, stats, err := Execute(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !out.Equal(serialOut) {
						t.Fatalf("parallel Execute disagrees: %d rows vs %d", out.Len(), serialOut.Len())
					}
					if *stats != *serialStats {
						t.Errorf("stats diverge: parallel %+v vs serial %+v", *stats, *serialStats)
					}
					n, cstats, err := Count(q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if n != serialOut.Len() {
						t.Fatalf("parallel Count %d vs %d", n, serialOut.Len())
					}
					if *cstats != *serialCountStats {
						t.Errorf("count stats diverge: %+v vs %+v", *cstats, *serialCountStats)
					}
				})
			}
		}
	}
}

// TestExecuteFuncOrder asserts the streaming API emits the exact
// serial tuple sequence at every worker count, for every algorithm
// that streams.
func TestExecuteFuncOrder(t *testing.T) {
	for name, q := range parallelQueries(t) {
		for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
			var want []Value
			_, err := ExecuteFunc(q, Options{Algorithm: algo, Parallelism: 1}, func(tu Tuple) error {
				want = append(want, tu...)
				return nil
			})
			if err != nil {
				t.Fatalf("%s/%v serial: %v", name, algo, err)
			}
			for _, p := range parallelisms[1:] {
				t.Run(fmt.Sprintf("%s/%v/p=%d", name, algo, p), func(t *testing.T) {
					var got []Value
					stats, err := ExecuteFunc(q, Options{Algorithm: algo, Parallelism: p}, func(tu Tuple) error {
						got = append(got, tu...)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("emitted %d values, want %d", len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("emission sequence diverges at flat index %d", i)
						}
					}
					if stats.Output*len(q.Vars) != len(got) {
						t.Fatalf("stats.Output %d inconsistent with %d emitted values", stats.Output, len(got))
					}
				})
			}
		}
	}
}

// TestExecuteFuncEmitError asserts an emit error aborts the run and
// propagates at every worker count.
func TestExecuteFuncEmitError(t *testing.T) {
	qs := parallelQueries(t)
	q := qs["triangle-skew"]
	sentinel := errors.New("stop")
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin} {
		for _, p := range []int{1, 4} {
			seen := 0
			_, err := ExecuteFunc(q, Options{Algorithm: algo, Parallelism: p}, func(Tuple) error {
				seen++
				if seen == 3 {
					return sentinel
				}
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("%v/p=%d: got %v, want sentinel", algo, p, err)
			}
			if seen != 3 {
				t.Fatalf("%v/p=%d: emit called %d times after error", algo, p, seen)
			}
		}
	}
}

// TestExecuteFuncAllAlgorithms asserts every algorithm's streaming
// output equals its materialized output.
func TestExecuteFuncAllAlgorithms(t *testing.T) {
	q := parallelQueries(t)["triangle-skew"]
	for _, algo := range []Algorithm{
		AlgoGenericJoin, AlgoLeapfrog, AlgoBacktracking, AlgoBinaryJoin, AlgoBinaryJoinProject,
	} {
		want, _, err := Execute(q, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		b := NewRelationBuilder("Q", q.Vars...)
		stats, err := ExecuteFunc(q, Options{Algorithm: algo}, func(tu Tuple) error {
			return b.Add(tu...)
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got := b.Build()
		if !got.Equal(want) {
			t.Fatalf("%v: streaming result disagrees with Execute", algo)
		}
		if stats.Output != want.Len() {
			t.Fatalf("%v: stats.Output %d, want %d", algo, stats.Output, want.Len())
		}
	}
}

// TestParallelismDefault documents the 0 => GOMAXPROCS default wiring.
func TestParallelismDefault(t *testing.T) {
	if w := (Options{}).workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := (Options{Parallelism: 7}).workers(); w != 7 {
		t.Fatalf("explicit workers %d, want 7", w)
	}
}
