package wcoj

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"wcoj/internal/dataset"
)

// TestNodeBudget checks admission-control budgets across both engines
// and serial/parallel execution: a tiny budget must cut every
// execution mode off with ErrNodeBudget, and a generous one must not
// disturb the result.
func TestNodeBudget(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(60, 800, 3)); err != nil {
		t.Fatal(err)
	}
	src := "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/par=%d", algo, par), func(t *testing.T) {
				pq, err := db.Prepare(src, Options{Algorithm: algo, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				rel, _, err := pq.Execute(context.Background())
				if err != nil {
					t.Fatal(err)
				}

				tiny := WithNodeBudget(context.Background(), 10)
				if _, _, err := pq.Execute(tiny); !errors.Is(err, ErrNodeBudget) {
					t.Fatalf("Execute under tiny budget: err=%v, want ErrNodeBudget", err)
				}
				if _, _, err := pq.Count(WithNodeBudget(context.Background(), 10)); !errors.Is(err, ErrNodeBudget) {
					t.Fatalf("Count under tiny budget: err=%v, want ErrNodeBudget", err)
				}
				if _, _, err := pq.CountFast(WithNodeBudget(context.Background(), 10)); !errors.Is(err, ErrNodeBudget) {
					t.Fatalf("CountFast under tiny budget: err=%v, want ErrNodeBudget", err)
				}

				big := WithNodeBudget(context.Background(), 1<<40)
				got, _, err := pq.Execute(big)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(rel) {
					t.Fatal("budgeted run diverged from unbudgeted result")
				}
				if n, _, err := pq.CountFast(WithNodeBudget(context.Background(), 1<<40)); err != nil || n != rel.Len() {
					t.Fatalf("CountFast under big budget: n=%d err=%v, want %d", n, err, rel.Len())
				}
			})
		}
	}
}

// TestNodeBudgetProjection exercises the enumerate/exists aggregate
// paths, whose budget exhaustion unwinds through error-less existence
// probes.
func TestNodeBudgetProjection(t *testing.T) {
	db := NewDB()
	if err := db.Register(dataset.RandomGraph(60, 800, 5)); err != nil {
		t.Fatal(err)
	}
	src := "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"
	for _, algo := range []Algorithm{AlgoGenericJoin, AlgoLeapfrog} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/par=%d", algo, par), func(t *testing.T) {
				pq, err := db.Prepare(src, Options{Algorithm: algo, Parallelism: par, Project: []string{"A"}})
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := pq.Execute(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := pq.Execute(WithNodeBudget(context.Background(), 10)); !errors.Is(err, ErrNodeBudget) {
					t.Fatalf("projected Execute under tiny budget: err=%v, want ErrNodeBudget", err)
				}
				got, _, err := pq.Execute(WithNodeBudget(context.Background(), 1<<40))
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatal("budgeted projection diverged from unbudgeted result")
				}
			})
		}
	}
}
