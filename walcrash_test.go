package wcoj

// Crash-recovery property test. The test binary re-execs itself as a
// child (TestMain diverts on WCOJ_CRASH_CHILD) that opens the durable
// directory, arms the WAL's crash point at a random byte offset past
// the current tail, and applies a deterministic stream of batches
// until the simulated kill -9 fires mid-append. The parent then
// recovers the directory and checks the two properties durability
// promises:
//
//  1. No acknowledged batch is lost: the recovered epoch is at least
//     the highest epoch the child acked before dying.
//  2. No batch is lost, duplicated or torn in the middle: the
//     recovered state is byte-identical to an uninterrupted shadow run
//     of exactly the first E batches of the same stream, where E is
//     the recovered epoch.
//
// Crashes stack: each iteration re-opens the same directory, so the
// stream survives dozens of kills at arbitrary offsets — including
// mid-frame, mid-header and just after a compaction rotated the log.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"wcoj/internal/dataset"
)

const (
	crashChildEnv = "WCOJ_CRASH_CHILD"
	crashDirEnv   = "WCOJ_CRASH_DIR"
	crashSeedEnv  = "WCOJ_CRASH_SEED"
	crashExtraEnv = "WCOJ_CRASH_EXTRA"
	crashMaxEnv   = "WCOJ_CRASH_MAX"

	// crashFresh offsets the per-batch guaranteed-fresh tuple well away
	// from the random-op value domain.
	crashFresh  = 1 << 20
	crashDomain = 50
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) != "" {
		crashChild()
		return // unreachable: crashChild always exits
	}
	os.Exit(m.Run())
}

// crashGraph is the initial relation both the children and the shadow
// run start from.
func crashGraph() *Relation {
	return dataset.RandomGraph(25, 120, 11)
}

// crashBatch is the deterministic update stream: batch i is a pure
// function of (seed, i), so the parent can rebuild any prefix without
// replaying the child's rng state. The first insert is always fresh,
// making every batch effective — the update epoch counts applied
// batches exactly.
func crashBatch(seed int64, i int) *Batch {
	rng := rand.New(rand.NewSource(seed + int64(i)*1000003))
	b := NewBatch().Insert("E", Tuple{crashFresh + Value(i), Value(i)})
	for k, n := 0, rng.Intn(4); k < n; k++ {
		b.Insert("E", Tuple{Value(rng.Intn(crashDomain)), Value(rng.Intn(crashDomain))})
	}
	for k, n := 0, rng.Intn(3); k < n; k++ {
		b.Delete("E", Tuple{Value(rng.Intn(crashDomain)), Value(rng.Intn(crashDomain))})
	}
	return b
}

// crashChild runs in the re-exec'd process: recover, arm the crash
// point, apply batches from where the stream left off, and print an
// ack per applied batch so the parent knows what durability promised.
func crashChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	seed, _ := strconv.ParseInt(os.Getenv(crashSeedEnv), 10, 64)
	extra, _ := strconv.ParseInt(os.Getenv(crashExtraEnv), 10, 64)
	max, _ := strconv.Atoi(os.Getenv(crashMaxEnv))
	db, err := OpenDir(os.Getenv(crashDirEnv))
	if err != nil {
		fail(err)
	}
	db.wal.SetCrashPoint(db.wal.Size()+extra, func() { os.Exit(137) })
	start := int(db.Stats().Epoch)
	for i := start; i < start+max; i++ {
		us, err := db.Apply(crashBatch(seed, i))
		if err != nil {
			fail(err)
		}
		fmt.Printf("acked %d\n", us.Epoch)
		// Rotate the log every few dozen batches so some kills land
		// right after a fresh generation started.
		if (i+1)%37 == 0 {
			if err := db.Compact(); err != nil {
				fail(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		fail(err)
	}
	fmt.Println("done")
	os.Exit(0)
}

// crashShadow rebuilds the uninterrupted reference state: the initial
// graph plus exactly the first `epoch` batches of the stream.
func crashShadow(t *testing.T, seed int64, epoch uint64) *DB {
	t.Helper()
	shadow := NewDB()
	if err := shadow.Register(crashGraph()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(epoch); i++ {
		us, err := shadow.Apply(crashBatch(seed, i))
		if err != nil {
			t.Fatalf("shadow batch %d: %v", i, err)
		}
		if us.Epoch != uint64(i+1) {
			t.Fatalf("shadow batch %d landed at epoch %d: stream batch was not effective", i, us.Epoch)
		}
	}
	return shadow
}

func TestCrashRecovery(t *testing.T) {
	const seed = 20260808
	dir := t.TempDir()
	setup, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Register(crashGraph()); err != nil {
		t.Fatal(err)
	}
	if err := setup.Close(); err != nil {
		t.Fatal(err)
	}

	iters := 12
	if testing.Short() {
		iters = 4
	}
	rng := rand.New(rand.NewSource(seed))
	var maxAcked uint64
	for iter := 0; iter < iters; iter++ {
		extra := 1 + rng.Int63n(2500)
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			crashChildEnv+"=1",
			crashDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", crashSeedEnv, seed),
			fmt.Sprintf("%s=%d", crashExtraEnv, extra),
			crashMaxEnv+"=400",
		)
		out, err := cmd.CombinedOutput()
		if err != nil {
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 137 {
				t.Fatalf("iter %d (extra=%d): child failed: %v\n%s", iter, extra, err, out)
			}
		}
		for _, line := range strings.Split(string(out), "\n") {
			var e uint64
			if _, err := fmt.Sscanf(line, "acked %d", &e); err == nil && e > maxAcked {
				maxAcked = e
			}
		}

		db, err := OpenDir(dir)
		if err != nil {
			t.Fatalf("iter %d (extra=%d): recovery failed: %v\n%s", iter, extra, err, out)
		}
		epoch := db.Stats().Epoch
		if epoch < maxAcked {
			t.Fatalf("iter %d (extra=%d): lost an acknowledged batch: recovered epoch %d < acked %d",
				iter, extra, epoch, maxAcked)
		}
		sameState(t, db, crashShadow(t, seed, epoch))
		if t.Failed() {
			t.Fatalf("iter %d (extra=%d): recovered state diverged from the uninterrupted run at epoch %d",
				iter, extra, epoch)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The survivor must still be a working database: reopen, continue
	// the stream, and answer a join.
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	epoch := db.Stats().Epoch
	if maxAcked == 0 || epoch == 0 {
		t.Fatalf("vacuous run: children acked up to %d, recovered epoch %d", maxAcked, epoch)
	}
	us, err := db.Apply(crashBatch(seed, int(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	if us.Epoch != epoch+1 {
		t.Fatalf("post-recovery apply landed at epoch %d, want %d", us.Epoch, epoch+1)
	}
	if _, _, err := db.Query(context.Background(), "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)", Options{}); err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
}
